// Crash/recovery harness for the persistent PMR (DESIGN.md §14).
//
// Extends the PR 2 fault-injection discipline with a deterministic crash
// class: a SplitMix64-sampled crash tick (fault::CrashPlan) cuts the run's
// PersistLog at an instant, every store is classified as durable (old or
// new value) or in-flight, in-flight multi-word stores may tear at 64B
// line granularity (8-byte stores are powerfail-atomic, per PMEM platform
// guarantees), and a per-workload recovery invariant verifies that the
// property arrays a recovery pass would observe are consistent — e.g.
// every Graph Update edge rewrite is all-or-nothing.
//
// Replaying the timing model once yields the PersistLog; each crash tick
// is then a pure post-processing pass over it, so a --crash-sweep of N
// ticks costs one replay and its outcome table is bit-identical at any
// --jobs count.
#ifndef GRAPHPIM_PMEM_CRASH_H_
#define GRAPHPIM_PMEM_CRASH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"
#include "fault/fault.h"
#include "pmem/pmem.h"

namespace graphpim::pmem {

// How a workload generates its persist discipline. The mutants exist so
// the checker's true-positive paths (and the crash harness's torn-update
// detection) can be exercised on demand (--pmem-mutant).
enum class PersistMode : std::uint8_t {
  kOff = 0,            // plain volatile trace (pre-PR byte-identical)
  kFull = 1,           // store -> flush -> fence -> publish -> flush -> fence
  kMissingFence = 2,   // mutant: payload fence elided (unordered publish)
  kRedundantFlush = 3, // mutant: payload line flushed twice
};

const char* ToString(PersistMode m);

// One crash-consistent update unit: the payload stores a recovery pass
// must see in full iff the publish store (the commit record) is durable.
// Stores are named by their per-thread PMR-store ordinal
// (TraceBuilder::PmrStoreCount / PersistStoreEvent::ordinal).
struct UpdateRecord {
  int thread = 0;
  std::vector<std::uint64_t> payload;
  std::uint64_t publish = 0;
};

// Every update a persist-mode workload emitted, plus the name of the
// recovery invariant that judges them.
struct UpdateLog {
  std::vector<UpdateRecord> updates;
  std::string invariant;
  bool empty() const { return updates.empty(); }
};

// What a recovery pass observes of one store after the crash.
enum class StoreVisibility : std::uint8_t {
  kOld = 0,   // pre-store contents (store never reached the media)
  kNew = 1,   // post-store contents (durable)
  kTorn = 2,  // mixed line contents (multi-word store cut mid-line)
};

const char* ToString(StoreVisibility v);

// Outcome of one crash/recovery cycle.
struct CrashOutcome {
  Tick crash_tick = 0;
  std::uint64_t durable_updates = 0;    // publish visible: replayed by recovery
  std::uint64_t discarded_updates = 0;  // publish old: dropped by recovery
  std::uint64_t torn_stores = 0;        // in-flight multi-word stores that tore
  std::uint64_t inflight_stores = 0;    // stores neither durable nor unissued
  bool consistent = true;
  std::vector<std::string> errors;  // capped; first few invariant failures
};

// Judges one update: `payload[i]` is the visibility of u.payload[i] and
// `publish` that of the commit record. Appends errors / flips `consistent`
// on out when recovery would observe an inconsistent state.
using RecoveryInvariant =
    std::function<void(const UpdateRecord& u,
                       const std::vector<StoreVisibility>& payload,
                       StoreVisibility publish, CrashOutcome* out)>;

// The default invariant: an update is all-or-nothing. A durable publish
// record requires every payload store durable; a non-durable publish means
// recovery discards the update (payload state irrelevant — the space is
// reclaimed). `what` names the update unit in error messages.
RecoveryInvariant AllOrNothingInvariant(std::string what);

// Evaluates one crash at `crash_tick` over the run's PersistLog:
// classifies every store's visibility (in-flight outcomes drawn from
// `plan`'s counter stream, decorrelated per `crash_index`), then applies
// `inv` to every update in `updates`. Pure function of its inputs.
CrashOutcome EvaluateCrashRecovery(const PersistLog& log,
                                   const UpdateLog& updates, Tick crash_tick,
                                   const fault::CrashPlan& plan,
                                   std::uint64_t crash_index,
                                   const RecoveryInvariant& inv);

// One line per cycle: "crash @123456 ns: consistent (durable 12, discarded
// 3, torn 0, in-flight 2)" — the deterministic unit of the recovery table.
std::string FormatCrashOutcome(const CrashOutcome& o);

}  // namespace graphpim::pmem

#endif  // GRAPHPIM_PMEM_CRASH_H_
