#include "pmem/crash.h"

#include <algorithm>
#include <utility>

#include "common/log.h"
#include "common/string_util.h"

namespace graphpim::pmem {

namespace {

// Cap the per-outcome error list so a badly broken mutant run does not
// balloon the recovery table.
constexpr std::size_t kMaxErrors = 8;

void AddError(CrashOutcome* out, std::string msg) {
  out->consistent = false;
  if (out->errors.size() < kMaxErrors) out->errors.push_back(std::move(msg));
}

// Same (core, ordinal) packing as trace::SpanRequestId, so a crash outcome
// names the store a span witness would.
std::uint64_t StoreKey(int core, std::uint64_t ordinal) {
  return (static_cast<std::uint64_t>(core) << 48) | ordinal;
}

}  // namespace

const char* ToString(PersistMode m) {
  switch (m) {
    case PersistMode::kOff: return "off";
    case PersistMode::kFull: return "full";
    case PersistMode::kMissingFence: return "missing-fence";
    case PersistMode::kRedundantFlush: return "redundant-flush";
  }
  return "?";
}

const char* ToString(StoreVisibility v) {
  switch (v) {
    case StoreVisibility::kOld: return "old";
    case StoreVisibility::kNew: return "new";
    case StoreVisibility::kTorn: return "torn";
  }
  return "?";
}

RecoveryInvariant AllOrNothingInvariant(std::string what) {
  return [what = std::move(what)](const UpdateRecord& u,
                                  const std::vector<StoreVisibility>& payload,
                                  StoreVisibility publish, CrashOutcome* out) {
    if (publish == StoreVisibility::kTorn) {
      // Publish records are single 8B stores and powerfail-atomic; a torn
      // one means the workload broke the commit-record contract.
      AddError(out, StrFormat("%s t%d publish #%llu is torn (commit records "
                              "must be powerfail-atomic)",
                              what.c_str(), u.thread,
                              static_cast<unsigned long long>(u.publish)));
      return;
    }
    if (publish == StoreVisibility::kOld) {
      // Commit record never became durable: recovery discards the update;
      // payload state is irrelevant (its space is reclaimed).
      ++out->discarded_updates;
      return;
    }
    ++out->durable_updates;
    for (std::size_t i = 0; i < payload.size(); ++i) {
      if (payload[i] != StoreVisibility::kNew) {
        AddError(out,
                 StrFormat("%s t%d published (#%llu durable) but payload "
                           "store #%llu is %s",
                           what.c_str(), u.thread,
                           static_cast<unsigned long long>(u.publish),
                           static_cast<unsigned long long>(u.payload[i]),
                           ToString(payload[i])));
      }
    }
  };
}

CrashOutcome EvaluateCrashRecovery(const PersistLog& log,
                                   const UpdateLog& updates, Tick crash_tick,
                                   const fault::CrashPlan& plan,
                                   std::uint64_t crash_index,
                                   const RecoveryInvariant& inv) {
  GP_CHECK(static_cast<bool>(inv), "recovery invariant must be callable");
  CrashOutcome out;
  out.crash_tick = crash_tick;

  // Classify every PMR store's post-crash visibility, indexed per core by
  // ordinal so UpdateRecords can look their stores up.
  std::vector<std::vector<StoreVisibility>> vis;
  for (const PersistStoreEvent& ev : log.stores) {
    const auto c = static_cast<std::size_t>(ev.core);
    if (c >= vis.size()) vis.resize(c + 1);
    if (vis[c].size() <= ev.ordinal) {
      vis[c].resize(ev.ordinal + 1, StoreVisibility::kOld);
    }
    StoreVisibility v;
    if (ev.issue > crash_tick) {
      // Never issued before the crash: recovery sees the old contents.
      v = StoreVisibility::kOld;
    } else if (ev.persist != kNeverPersisted && ev.persist <= crash_tick) {
      v = StoreVisibility::kNew;  // a fence made it durable in time
    } else {
      // Issued but not persisted: in flight. The media may hold either
      // value; multi-word stores can additionally tear mid-line.
      ++out.inflight_stores;
      const int coin = plan.InFlightOutcome(StoreKey(ev.core, ev.ordinal),
                                            crash_index, ev.size > 8);
      v = coin == 0   ? StoreVisibility::kOld
          : coin == 1 ? StoreVisibility::kNew
                      : StoreVisibility::kTorn;
      if (v == StoreVisibility::kTorn) ++out.torn_stores;
    }
    vis[c][ev.ordinal] = v;
  }

  const auto lookup = [&vis, &out](int thread,
                                   std::uint64_t ordinal) -> StoreVisibility {
    const auto c = static_cast<std::size_t>(thread);
    if (c >= vis.size() || ordinal >= vis[c].size()) {
      AddError(&out, StrFormat("update names store t%d#%llu absent from the "
                               "persist log",
                               thread,
                               static_cast<unsigned long long>(ordinal)));
      return StoreVisibility::kOld;
    }
    return vis[c][ordinal];
  };

  std::vector<StoreVisibility> payload;
  for (const UpdateRecord& u : updates.updates) {
    payload.clear();
    payload.reserve(u.payload.size());
    for (std::uint64_t ord : u.payload) payload.push_back(lookup(u.thread, ord));
    inv(u, payload, lookup(u.thread, u.publish), &out);
  }
  return out;
}

std::string FormatCrashOutcome(const CrashOutcome& o) {
  std::string s = StrFormat(
      "crash @%.0f ns: %s (durable %llu, discarded %llu, torn %llu, "
      "in-flight %llu)",
      TicksToNs(o.crash_tick), o.consistent ? "consistent" : "INCONSISTENT",
      static_cast<unsigned long long>(o.durable_updates),
      static_cast<unsigned long long>(o.discarded_updates),
      static_cast<unsigned long long>(o.torn_stores),
      static_cast<unsigned long long>(o.inflight_stores));
  for (const std::string& e : o.errors) {
    s += "\n    ! ";
    s += e;
  }
  return s;
}

}  // namespace graphpim::pmem
