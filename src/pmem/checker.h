// Persist-ordering checker (DESIGN.md §14): static validation of a
// micro-op stream's flush/fence discipline, in the PMTest/Hippocrates
// style of mechanically checkable persistency rules.
//
// The checker walks each thread's generated micro-ops — not the timing
// model's replay — so it runs once per trace regardless of how many
// configs replay it, and a violation is a property of the workload's
// persist discipline, not of machine timing. It flags:
//
//   - kUnpersistedStore:  a PMR store whose line is never flushed;
//   - kMissingFence:      a flushed line never covered by a fence, so the
//                         writeback may still be in a volatile queue at
//                         crash time;
//   - kRedundantFlush:    a flush of a clean or already-flushed line
//                         (wasted write bandwidth, PMEM wear);
//   - kUnorderedPublish:  an UpdateRecord's commit store issued before all
//                         of its payload stores were fence-persisted — the
//                         exact bug class the missing-fence mutant seeds.
//
// Violations carry the store's memory-request ordinal, which matches the
// span recorder's request ids, so FormatCheckReport can attach sampled
// span chains as timing witnesses (trace.sample_rate > 0).
#ifndef GRAPHPIM_PMEM_CHECKER_H_
#define GRAPHPIM_PMEM_CHECKER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/span.h"
#include "common/types.h"
#include "cpu/uop.h"
#include "cpu/uop_stream.h"
#include "pmem/crash.h"

namespace graphpim::pmem {

enum class ViolationKind : std::uint8_t {
  kUnpersistedStore = 0,
  kMissingFence,
  kRedundantFlush,
  kUnorderedPublish,
};

const char* ToString(ViolationKind k);

struct PersistViolation {
  ViolationKind kind = ViolationKind::kUnpersistedStore;
  int thread = 0;
  std::size_t op_index = 0;       // index into the thread's micro-op stream
  Addr addr = 0;                  // op address (store addr / flushed addr)
  Addr line = 0;                  // 64B line
  std::uint64_t mem_ordinal = 0;  // per-thread memory-request ordinal
                                  // (= span request ordinal of this op)
  std::string detail;
};

struct CheckReport {
  std::vector<PersistViolation> violations;

  std::uint64_t pmr_stores = 0;
  std::uint64_t flushes = 0;
  std::uint64_t fences = 0;
  std::uint64_t unpersisted_stores = 0;
  std::uint64_t missing_fences = 0;
  std::uint64_t redundant_flushes = 0;
  std::uint64_t unordered_publishes = 0;

  bool ok() const { return violations.empty(); }
};

// Checks the persist ordering of `streams` (one tiled micro-op stream per
// thread) over the PMR window [pmr_base, pmr_end). `updates` may be null;
// when given, its publish/payload ordinals drive the kUnorderedPublish
// rule. Pure function; no timing state consulted.
CheckReport CheckPersistOrdering(
    const std::vector<cpu::UopStream>& streams, Addr pmr_base,
    Addr pmr_end, const UpdateLog* updates);

// Human-readable report: counts line plus one line per violation, with a
// span-chain witness attached when `spans` sampled the violating request.
// Violations are listed in (thread, op_index) order — deterministic.
std::string FormatCheckReport(const CheckReport& report,
                              const trace::SpanLog* spans);

}  // namespace graphpim::pmem

#endif  // GRAPHPIM_PMEM_CHECKER_H_
