#include "exec/result_sink.h"

#include <cstdio>

#include "common/string_util.h"
#include "core/report.h"

namespace graphpim::exec {

namespace {

// Indents a multi-line JSON fragment by `pad` spaces (for embedding
// core::ToJson() output inside a row object).
std::string Indent(const std::string& json, int pad) {
  std::string prefix(static_cast<std::size_t>(pad), ' ');
  std::string out;
  out.reserve(json.size() + 64);
  for (std::size_t i = 0; i < json.size(); ++i) {
    out += json[i];
    if (json[i] == '\n' && i + 1 < json.size()) out += prefix;
  }
  // Drop a trailing newline so the caller controls layout.
  while (!out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

std::string CsvBody(const SweepResultTable& t, bool with_timing) {
  std::string out = "workload,profile,config,seed,cycles,insts,ipc,l1_mpki,"
                    "l2_mpki,l3_mpki,atomics,offloaded_atomics,atomic_miss_rate,"
                    "req_flits,resp_flits,energy_total_j,speedup_vs_first";
  if (with_timing) out += ",wall_ms";
  out += "\n";
  for (const SweepRow& r : t.rows) {
    const core::SimResults& s = r.results;
    out += StrFormat(
        "%s,%s,%s,%llu,%llu,%llu,%.6f,%.3f,%.3f,%.3f,%llu,%llu,%.4f,%.0f,%.0f,"
        "%.9f,%.4f",
        r.workload.c_str(), r.profile.c_str(), r.config_name.c_str(),
        static_cast<unsigned long long>(r.seed),
        static_cast<unsigned long long>(s.cycles),
        static_cast<unsigned long long>(s.insts), s.ipc, s.l1_mpki, s.l2_mpki,
        s.l3_mpki, static_cast<unsigned long long>(s.atomics),
        static_cast<unsigned long long>(s.offloaded_atomics),
        s.atomic_miss_rate, s.req_flits, s.resp_flits, s.energy.Total(),
        t.SpeedupVsFirstConfig(r));
    if (with_timing) out += StrFormat(",%.3f", r.wall_ms);
    out += "\n";
  }
  return out;
}

bool WriteFile(const std::string& content, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  std::fclose(f);
  return ok;
}

}  // namespace

std::string ToJson(const SweepResultTable& t) {
  std::string out = "{\n";
  out += StrFormat("  \"jobs\": %llu,\n",
                   static_cast<unsigned long long>(t.rows.size()));
  out += "  \"rows\": [\n";
  for (std::size_t i = 0; i < t.rows.size(); ++i) {
    const SweepRow& r = t.rows[i];
    out += "    {\n";
    out += StrFormat("      \"workload\": \"%s\",\n", r.workload.c_str());
    out += StrFormat("      \"profile\": \"%s\",\n", r.profile.c_str());
    out += StrFormat("      \"config\": \"%s\",\n", r.config_name.c_str());
    out += StrFormat("      \"seed\": %llu,\n",
                     static_cast<unsigned long long>(r.seed));
    // Fault-tolerance fields only when a job actually failed or retried,
    // so fault-free sweeps serialize byte-identically to the ideal model.
    if (r.status != JobStatus::kOk || r.attempts != 1) {
      out += StrFormat("      \"status\": \"%s\",\n", ToString(r.status));
      out += StrFormat("      \"attempts\": %d,\n", r.attempts);
      out += StrFormat("      \"error\": \"%s\",\n", JsonEscape(r.error).c_str());
    }
    out += StrFormat("      \"speedup_vs_first\": %.6f,\n",
                     t.SpeedupVsFirstConfig(r));
    out += StrFormat("      \"wall_ms\": %.3f,\n", r.wall_ms);
    out += "      \"result\": " + Indent(core::ToJson(r.results), 6) + "\n";
    out += (i + 1 < t.rows.size()) ? "    },\n" : "    }\n";
  }
  out += "  ],\n";
  out += "  \"timing\": {\n";
  out += StrFormat("    \"total_wall_ms\": %.3f,\n", t.total_wall_ms);
  out += StrFormat("    \"build_wall_ms\": %.3f,\n", t.build_wall_ms);
  out += StrFormat("    \"run_wall_ms\": %.3f,\n", t.run_wall_ms);
  out += StrFormat("    \"job_wall_ms_mean\": %.3f,\n", t.job_wall_ms.Mean());
  out += StrFormat("    \"job_wall_ms_p50\": %.3f,\n",
                   t.job_wall_ms.Percentile(50));
  out += StrFormat("    \"job_wall_ms_p95\": %.3f,\n",
                   t.job_wall_ms.Percentile(95));
  out += StrFormat("    \"job_wall_ms_max\": %.3f\n", t.job_wall_ms.max());
  out += "  }\n}\n";
  return out;
}

std::string ToCsv(const SweepResultTable& t) { return CsvBody(t, true); }

std::string ToDeterministicCsv(const SweepResultTable& t) {
  return CsvBody(t, false);
}

bool WriteJson(const SweepResultTable& t, const std::string& path) {
  return WriteFile(ToJson(t), path);
}

bool WriteCsv(const SweepResultTable& t, const std::string& path) {
  return WriteFile(ToCsv(t), path);
}

bool WriteDeterministicCsv(const SweepResultTable& t, const std::string& path) {
  return WriteFile(ToDeterministicCsv(t), path);
}

}  // namespace graphpim::exec
