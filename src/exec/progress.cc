#include "exec/progress.h"

#include <chrono>

#include "common/string_util.h"

namespace graphpim::exec {

std::string FormatProgressLine(const SweepProgress& p, double elapsed_ms) {
  const double eta_s =
      p.completed == 0
          ? 0.0
          : elapsed_ms / static_cast<double>(p.completed) *
                static_cast<double>(p.total - p.completed) / 1e3;
  std::string line =
      StrFormat("[%3zu/%3zu] %-8s %-8s %-10s %7.0f ms | ETA %.0fs%s",
                p.completed, p.total, p.workload.c_str(), p.profile.c_str(),
                p.config_name.c_str(), p.wall_ms, eta_s,
                p.status == JobStatus::kOk ? "" : "  FAILED");
  if (!p.note.empty()) {
    line += " | ";
    line += p.note;
  }
  line += '\n';
  return line;
}

std::function<void(const SweepProgress&)> StderrHeartbeat(std::FILE* out) {
  const auto t0 = std::chrono::steady_clock::now();
  return [t0, out](const SweepProgress& p) {
    const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
    const std::string line = FormatProgressLine(p, elapsed_ms);
    std::fputs(line.c_str(), out != nullptr ? out : stderr);
  };
}

}  // namespace graphpim::exec
