#include "exec/thread_pool.h"

#include <chrono>

namespace graphpim::exec {

namespace {

// Identifies the owning pool when Submit() is called from a worker thread,
// so nested submissions stay on the submitter's deque (work-first order).
thread_local ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_self = 0;

}  // namespace

const char* ToString(TaskState s) {
  switch (s) {
    case TaskState::kPending: return "pending";
    case TaskState::kRunning: return "running";
    case TaskState::kDone: return "done";
    case TaskState::kCancelled: return "cancelled";
  }
  return "?";
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    workers_[i]->thread = std::thread([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::OnWorkerThread() const { return tl_pool == this; }

void ThreadPool::Enqueue(std::shared_ptr<void> owner, detail::TaskCore* core) {
  GP_CHECK(!stopping_.load(), "Submit() after Shutdown()");
  std::size_t target;
  if (tl_pool == this) {
    target = tl_self;
  } else {
    target = next_queue_.fetch_add(1) % workers_.size();
  }
  in_flight_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lk(workers_[target]->mu);
    workers_[target]->dq.emplace_back(std::move(owner), core);
  }
  const std::uint64_t depth = queued_.fetch_add(1) + 1;
  // Lock-free high-water mark (racy-loop CAS; monotone, so no ABA issue).
  std::uint64_t peak = peak_queued_.load(std::memory_order_relaxed);
  while (depth > peak &&
         !peak_queued_.compare_exchange_weak(peak, depth,
                                             std::memory_order_relaxed)) {
  }
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.submitted;
  }
  wake_cv_.notify_one();
}

std::pair<std::shared_ptr<void>, detail::TaskCore*> ThreadPool::TakeTask(
    std::size_t self, bool* stole) {
  *stole = false;
  {
    Worker& w = *workers_[self];
    std::lock_guard<std::mutex> lk(w.mu);
    if (!w.dq.empty()) {
      auto t = std::move(w.dq.back());
      w.dq.pop_back();
      queued_.fetch_sub(1);
      return t;
    }
  }
  for (std::size_t i = 1; i < workers_.size(); ++i) {
    Worker& w = *workers_[(self + i) % workers_.size()];
    std::lock_guard<std::mutex> lk(w.mu);
    if (!w.dq.empty()) {
      auto t = std::move(w.dq.front());
      w.dq.pop_front();
      queued_.fetch_sub(1);
      *stole = true;
      return t;
    }
  }
  return {nullptr, nullptr};
}

void ThreadPool::TaskRetired() {
  if (in_flight_.fetch_sub(1) == 1) {
    std::lock_guard<std::mutex> lk(wake_mu_);
    drained_cv_.notify_all();
  }
}

void ThreadPool::WorkerLoop(std::size_t self) {
  tl_pool = this;
  tl_self = self;
  while (true) {
    bool stole = false;
    auto [owner, core] = TakeTask(self, &stole);
    if (core == nullptr) {
      std::unique_lock<std::mutex> lk(wake_mu_);
      wake_cv_.wait(lk, [this] {
        return stopping_.load() || queued_.load() > 0;
      });
      if (stopping_.load() && queued_.load() == 0) return;
      continue;
    }
    if (stole) {
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.steals;
    }
    if (!core->TryStart()) {
      // Cancelled while queued: drop without running.
      {
        std::lock_guard<std::mutex> lk(stats_mu_);
        ++stats_.cancelled;
      }
      owner.reset();
      TaskRetired();
      continue;
    }
    const std::uint64_t now_running = running_.fetch_add(1) + 1;
    std::uint64_t peak = peak_running_.load(std::memory_order_relaxed);
    while (now_running > peak &&
           !peak_running_.compare_exchange_weak(peak, now_running,
                                                std::memory_order_relaxed)) {
    }
    const auto t0 = std::chrono::steady_clock::now();
    core->run();
    const double ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                  t0)
            .count();
    core->run = nullptr;  // release the closure's captures promptly
    running_.fetch_sub(1);
    core->Finish(ms);
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.executed;
      stats_.busy_ms += ms;
    }
    owner.reset();
    TaskRetired();
  }
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lk(wake_mu_);
  drained_cv_.wait(lk, [this] { return in_flight_.load() == 0; });
}

std::size_t ThreadPool::CancelPending() {
  std::size_t newly_cancelled = 0;
  for (auto& wp : workers_) {
    Worker& w = *wp;
    std::deque<std::pair<std::shared_ptr<void>, detail::TaskCore*>> removed;
    {
      std::lock_guard<std::mutex> lk(w.mu);
      std::deque<std::pair<std::shared_ptr<void>, detail::TaskCore*>> keep;
      for (auto& entry : w.dq) {
        TaskState st = entry.second->State();
        bool cancelled_now = entry.second->Cancel();
        if (cancelled_now) ++newly_cancelled;
        if (cancelled_now || st == TaskState::kCancelled) {
          queued_.fetch_sub(1);
          removed.push_back(std::move(entry));
        } else {
          keep.push_back(std::move(entry));
        }
      }
      w.dq.swap(keep);
    }
    // Retire outside the deque lock.
    for (auto& entry : removed) {
      {
        std::lock_guard<std::mutex> lk(stats_mu_);
        ++stats_.cancelled;
      }
      entry.first.reset();
      TaskRetired();
    }
  }
  return newly_cancelled;
}

void ThreadPool::Shutdown() {
  stopping_.store(true);
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

PoolStats ThreadPool::stats() const {
  PoolStats s;
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    s = stats_;
  }
  s.peak_queued = peak_queued_.load(std::memory_order_relaxed);
  s.peak_running = peak_running_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::ExportStats(StatRegistry* reg,
                             const std::string& prefix) const {
  if (reg == nullptr) return;
  const PoolStats s = stats();
  reg->Set(prefix + ".threads", static_cast<double>(workers_.size()));
  reg->Set(prefix + ".submitted", static_cast<double>(s.submitted));
  reg->Set(prefix + ".executed", static_cast<double>(s.executed));
  reg->Set(prefix + ".cancelled", static_cast<double>(s.cancelled));
  reg->Set(prefix + ".steals", static_cast<double>(s.steals));
  reg->Set(prefix + ".busy_ms", s.busy_ms);
  reg->Set(prefix + ".peak_queued", static_cast<double>(s.peak_queued));
  reg->Set(prefix + ".peak_running", static_cast<double>(s.peak_running));
}

}  // namespace graphpim::exec
