// Serialization of sweep result tables to JSON and CSV.
//
// JSON rows embed the full per-run object from core/report's ToJson(), so
// anything downstream of graphpim_sim's --json keeps working on sweep
// output. The deterministic payload (per-row "result") is separated from
// timing metadata ("wall_ms", "timing"), which legitimately varies between
// runs of the same grid.
#ifndef GRAPHPIM_EXEC_RESULT_SINK_H_
#define GRAPHPIM_EXEC_RESULT_SINK_H_

#include <string>

#include "exec/sweep.h"

namespace graphpim::exec {

// Full table as one JSON object: {"jobs": N, "rows": [...], "timing": {...}}.
std::string ToJson(const SweepResultTable& table);

// Headline-metric CSV, one row per job, stable column order. The first
// columns key the row (workload, profile, config); speedup_vs_first is
// relative to config 0 of the same cell.
std::string ToCsv(const SweepResultTable& table);

// Same, excluding the wall_ms column and timing metadata — every byte of
// this serialization is covered by the determinism contract, so it can be
// compared across job counts.
std::string ToDeterministicCsv(const SweepResultTable& table);

bool WriteJson(const SweepResultTable& table, const std::string& path);
bool WriteCsv(const SweepResultTable& table, const std::string& path);
bool WriteDeterministicCsv(const SweepResultTable& table, const std::string& path);

}  // namespace graphpim::exec

#endif  // GRAPHPIM_EXEC_RESULT_SINK_H_
