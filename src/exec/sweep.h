// Deterministic parallel sweep execution.
//
// A sweep is a job matrix: workloads × profiles × machine configs. Each
// (workload, profile) cell generates ONE Experiment (graph + functional
// trace) that every config of the cell replays, so comparisons stay paired
// exactly like the serial benches. Cells are seeded independently of job
// count and scheduling order, and rows are emitted in grid order, so:
//
//   DETERMINISM CONTRACT: the same SweepGrid produces bit-identical
//   SimResults rows for --jobs=1 and --jobs=N. Only wall-time metadata
//   (wall_ms, histogram, totals) may differ between runs.
//
// Execution overlaps trace generation and replay: each cell's config jobs
// are submitted the moment that cell's Experiment is built, so a slow cell
// does not serialize the rest of the grid.
//
// Fault tolerance (DESIGN.md §9): a job that throws (bad workload name,
// simulation invariant escalated as SimError, ...) yields a SweepRow with
// status=kFailed and the error text instead of killing the sweep. An
// optional journal streams finished rows to disk so a killed sweep can be
// resumed (--resume) without redoing completed coordinates; because replays
// are deterministic, a resumed table is bit-identical to an uninterrupted
// run. An optional soft watchdog spawns one speculative retry (fresh
// decorrelated seed) for overdue jobs; the original result is preferred
// whenever it completes OK, so the contract holds unless a retry actually
// replaces a failed original.
#ifndef GRAPHPIM_EXEC_SWEEP_H_
#define GRAPHPIM_EXEC_SWEEP_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "core/runner.h"
#include "core/sim_config.h"

namespace graphpim::exec {

// The job matrix. `configs` and `config_names` are parallel arrays; names
// key the result table (typically the mode string, e.g. "GraphPIM").
struct SweepGrid {
  std::vector<std::string> workloads;
  std::vector<std::string> profiles = {"ldbc"};
  std::vector<core::SimConfig> configs;
  std::vector<std::string> config_names;

  VertexId vertices = 32 * 1024;
  int sim_threads = 16;  // cores simulated per job (== trace streams)
  std::uint64_t op_cap = 12'000'000;
  std::uint64_t base_seed = 1;

  std::size_t NumCells() const { return workloads.size() * profiles.size(); }
  std::size_t NumJobs() const { return NumCells() * configs.size(); }
};

// Expands a deterministic per-cell seed from `base_seed` and the cell
// coordinates via SplitMix64. Stable across job counts, scheduling, and
// platforms; distinct cells get decorrelated seeds.
std::uint64_t DeriveCellSeed(std::uint64_t base_seed, std::size_t workload_idx,
                             std::size_t profile_idx);

enum class JobStatus { kOk, kFailed };

const char* ToString(JobStatus s);

// One finished job, keyed by grid coordinates.
struct SweepRow {
  std::size_t workload_idx = 0;
  std::size_t profile_idx = 0;
  std::size_t config_idx = 0;
  std::string workload;
  std::string profile;
  std::string config_name;
  std::uint64_t seed = 0;  // the cell seed the trace was generated with
  core::SimResults results;
  double wall_ms = 0.0;  // replay wall time (timing metadata, not results)

  // Fault tolerance. A failed row has default-constructed `results` and a
  // human-readable `error`; failed rows are never journaled, so a resume
  // retries them.
  JobStatus status = JobStatus::kOk;
  std::string error;
  int attempts = 1;           // 2 when the watchdog spawned a retry
  bool from_journal = false;  // restored by resume, not re-simulated
};

// Snapshot passed to the progress callback as each job retires.
struct SweepProgress {
  std::size_t completed = 0;
  std::size_t total = 0;
  std::string workload;
  std::string profile;
  std::string config_name;
  double wall_ms = 0.0;
  JobStatus status = JobStatus::kOk;
  // Free-form telemetry note appended to the heartbeat line (" | <note>")
  // when non-empty; empty keeps the original line byte-identical.
  std::string note;
};

struct SweepResultTable {
  // Rows in grid order: workload-major, then profile, then config. This
  // ordering (not completion order) is part of the determinism contract.
  std::vector<SweepRow> rows;

  // Fault-tolerance accounting.
  std::size_t failed_rows = 0;   // rows with status == kFailed
  std::size_t resumed_rows = 0;  // rows restored from the journal

  // Timing metadata (NOT covered by the determinism contract).
  Histogram job_wall_ms{5.0, 400};  // 5 ms buckets up to 2 s + overflow
  double build_wall_ms = 0.0;       // summed Experiment construction time
  double run_wall_ms = 0.0;         // summed replay time
  double total_wall_ms = 0.0;       // end-to-end sweep wall clock

  // Lookup by names; nullptr when absent.
  const SweepRow* Find(const std::string& workload, const std::string& profile,
                       const std::string& config_name) const;

  // Speedup of `row` relative to config 0 of the same cell (the
  // conventional "vs baseline" column); 0 when the cell's config 0 is
  // missing or has zero cycles.
  double SpeedupVsFirstConfig(const SweepRow& row) const;
};

class SweepRunner {
 public:
  struct Options {
    int jobs = 1;  // pool width; <= 0 selects hardware_concurrency()

    // Soft per-job watchdog: when > 0, a job overdue at harvest time gets
    // ONE speculative retry with a fresh decorrelated seed. The original
    // run is never interrupted and wins if it completes OK, so the
    // determinism contract only bends when the retry replaces a *failed*
    // original. 0 disables (the default, and the contract-safe setting).
    double job_timeout_ms = 0.0;

    // Crash-safe journal: when non-empty, every OK row is appended (and
    // flushed) to this JSONL file as it is harvested. With `resume`, rows
    // already present are restored instead of re-simulated; the journal
    // header fingerprints the grid and a mismatch throws SimError.
    std::string journal_path;
    bool resume = false;

    // With a journal: also capture per-BSP-superstep phase deltas during
    // each freshly-simulated job and append them as `{"phases_for":...}`
    // sidecar lines after the row. Sidecars are skipped on load, so
    // resume semantics are unchanged. Ignored without a journal.
    //
    // Span sidecars ({"spans_for":...}) need no separate option: when the
    // journal is open and a config's trace.sample_rate > 0, each freshly
    // simulated row's sampled spans are appended after it.
    bool journal_phases = false;

    // Invoked serially (under a lock) as each job retires; may print.
    std::function<void(const SweepProgress&)> on_progress;
  };

  explicit SweepRunner(Options opts) : opts_(std::move(opts)) {}
  SweepRunner() : SweepRunner(Options{}) {}

  // Runs the full grid; blocks until every job finished. Throws SimError
  // on a resume-journal/grid mismatch or an unwritable journal path;
  // per-job failures come back as status=kFailed rows, not exceptions.
  SweepResultTable Run(const SweepGrid& grid) const;

 private:
  Options opts_;
};

// Parses a compact grid spec of the form
//   "workloads=bfs,prank;modes=baseline,graphpim;profiles=ldbc;
//    vertices=16384;threads=16;opcap=2000000;seed=1;full=0;
//    link_ber=1e-12;vault_stall_ppm=50;poison_ppm=5;max_retries=3;
//    retry_ns=8;num_cubes=1,2,4,8;topology=chain"
// Keys may appear in any order; all are optional except workloads.
// modes accepts baseline|upei|graphpim|ucnopim or "all" (the three
// paper-evaluated machines). Structural keys shape the job matrix; every
// other accepted key is a machine knob owned by SimConfig's field table
// and applied to each config via SimConfig::FromConfig, so fault knobs
// (and full=1 Table IV sizing, topology, ...) apply grid-wide.
// num_cubes is the one knob that accepts a comma list (hmc.num_cubes is
// an accepted alias): multiple counts expand the config axis to
// modes x cube counts, with names suffixed "-c<N>" ("GraphPIM-c4").
// User errors (unknown keys, duplicates, malformed or out-of-range
// values) throw SimError listing the accepted keys.
SweepGrid ParseGridSpec(const std::string& spec);

// "baseline,graphpim" / "all" -> mode list (shared by the CLI drivers).
// Throws SimError on an unknown mode name or an empty list.
std::vector<core::Mode> ParseModeList(const std::string& arg);

}  // namespace graphpim::exec

#endif  // GRAPHPIM_EXEC_SWEEP_H_
