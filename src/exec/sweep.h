// Deterministic parallel sweep execution.
//
// A sweep is a job matrix: workloads × profiles × machine configs. Each
// (workload, profile) cell generates ONE Experiment (graph + functional
// trace) that every config of the cell replays, so comparisons stay paired
// exactly like the serial benches. Cells are seeded independently of job
// count and scheduling order, and rows are emitted in grid order, so:
//
//   DETERMINISM CONTRACT: the same SweepGrid produces bit-identical
//   SimResults rows for --jobs=1 and --jobs=N. Only wall-time metadata
//   (wall_ms, histogram, totals) may differ between runs.
//
// Execution overlaps trace generation and replay: each cell's config jobs
// are submitted the moment that cell's Experiment is built, so a slow cell
// does not serialize the rest of the grid.
#ifndef GRAPHPIM_EXEC_SWEEP_H_
#define GRAPHPIM_EXEC_SWEEP_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "core/runner.h"
#include "core/sim_config.h"

namespace graphpim::exec {

// The job matrix. `configs` and `config_names` are parallel arrays; names
// key the result table (typically the mode string, e.g. "GraphPIM").
struct SweepGrid {
  std::vector<std::string> workloads;
  std::vector<std::string> profiles = {"ldbc"};
  std::vector<core::SimConfig> configs;
  std::vector<std::string> config_names;

  VertexId vertices = 32 * 1024;
  int sim_threads = 16;  // cores simulated per job (== trace streams)
  std::uint64_t op_cap = 12'000'000;
  std::uint64_t base_seed = 1;

  std::size_t NumCells() const { return workloads.size() * profiles.size(); }
  std::size_t NumJobs() const { return NumCells() * configs.size(); }
};

// Expands a deterministic per-cell seed from `base_seed` and the cell
// coordinates via SplitMix64. Stable across job counts, scheduling, and
// platforms; distinct cells get decorrelated seeds.
std::uint64_t DeriveCellSeed(std::uint64_t base_seed, std::size_t workload_idx,
                             std::size_t profile_idx);

// One finished job, keyed by grid coordinates.
struct SweepRow {
  std::size_t workload_idx = 0;
  std::size_t profile_idx = 0;
  std::size_t config_idx = 0;
  std::string workload;
  std::string profile;
  std::string config_name;
  std::uint64_t seed = 0;  // the cell seed the trace was generated with
  core::SimResults results;
  double wall_ms = 0.0;  // replay wall time (timing metadata, not results)
};

// Snapshot passed to the progress callback as each job retires.
struct SweepProgress {
  std::size_t completed = 0;
  std::size_t total = 0;
  std::string workload;
  std::string profile;
  std::string config_name;
  double wall_ms = 0.0;
};

struct SweepResultTable {
  // Rows in grid order: workload-major, then profile, then config. This
  // ordering (not completion order) is part of the determinism contract.
  std::vector<SweepRow> rows;

  // Timing metadata (NOT covered by the determinism contract).
  Histogram job_wall_ms{5.0, 400};  // 5 ms buckets up to 2 s + overflow
  double build_wall_ms = 0.0;       // summed Experiment construction time
  double run_wall_ms = 0.0;         // summed replay time
  double total_wall_ms = 0.0;       // end-to-end sweep wall clock

  // Lookup by names; nullptr when absent.
  const SweepRow* Find(const std::string& workload, const std::string& profile,
                       const std::string& config_name) const;

  // Speedup of `row` relative to config 0 of the same cell (the
  // conventional "vs baseline" column); 0 when the cell's config 0 is
  // missing or has zero cycles.
  double SpeedupVsFirstConfig(const SweepRow& row) const;
};

class SweepRunner {
 public:
  struct Options {
    int jobs = 1;  // pool width; <= 0 selects hardware_concurrency()
    // Invoked serially (under a lock) as each job retires; may print.
    std::function<void(const SweepProgress&)> on_progress;
  };

  explicit SweepRunner(Options opts) : opts_(std::move(opts)) {}
  SweepRunner() : SweepRunner(Options{}) {}

  // Runs the full grid; blocks until every job finished.
  SweepResultTable Run(const SweepGrid& grid) const;

 private:
  Options opts_;
};

// Parses a compact grid spec of the form
//   "workloads=bfs,prank;modes=baseline,graphpim;profiles=ldbc;
//    vertices=16384;threads=16;opcap=2000000;seed=1;full=0"
// Keys may appear in any order; all are optional except workloads.
// modes accepts baseline|upei|graphpim|ucnopim or "all" (the three
// paper-evaluated machines); full=1 selects Table IV-size machines.
// Unknown keys are fatal (user error).
SweepGrid ParseGridSpec(const std::string& spec);

// "baseline,graphpim" / "all" -> mode list (shared by the CLI drivers).
std::vector<core::Mode> ParseModeList(const std::string& arg);

}  // namespace graphpim::exec

#endif  // GRAPHPIM_EXEC_SWEEP_H_
