#include "exec/journal.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/log.h"
#include "common/string_util.h"

namespace graphpim::exec {

namespace {

// %.17g round-trips every finite double exactly; %llu keeps full-range
// 64-bit seeds intact (a double detour would silently lose low bits).
std::string D(double v) { return StrFormat("%.17g", v); }
std::string U(std::uint64_t v) {
  return StrFormat("%llu", static_cast<unsigned long long>(v));
}

// ---------------------------------------------------------------------------
// Minimal parser for the JSON subset this file emits: objects, arrays,
// strings, numbers. Numbers keep their raw token so the consumer chooses
// strtoull vs strtod (full 64-bit seeds must not round-trip through a
// double). Any syntax outside the subset fails the line.

struct JVal {
  enum class Kind { kObj, kArr, kStr, kNum };
  Kind kind = Kind::kNum;
  std::vector<std::pair<std::string, JVal>> obj;
  std::vector<JVal> arr;
  std::string text;  // decoded string (kStr) or raw token (kNum)

  const JVal* Get(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  double Num() const { return std::strtod(text.c_str(), nullptr); }
  std::uint64_t U64() const { return std::strtoull(text.c_str(), nullptr, 10); }
};

class Parser {
 public:
  explicit Parser(const std::string& s) : p_(s.c_str()), end_(p_ + s.size()) {}

  // Whole-line parse: one value, then nothing but whitespace.
  bool Parse(JVal* out) {
    if (!ParseValue(out)) return false;
    SkipWs();
    return p_ == end_;
  }

 private:
  void SkipWs() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\r')) ++p_;
  }

  bool ParseValue(JVal* out) {
    SkipWs();
    if (p_ == end_) return false;
    switch (*p_) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"':
        out->kind = JVal::Kind::kStr;
        return ParseString(&out->text);
      default: return ParseNumber(out);
    }
  }

  bool ParseObject(JVal* out) {
    out->kind = JVal::Kind::kObj;
    ++p_;  // '{'
    SkipWs();
    if (p_ != end_ && *p_ == '}') { ++p_; return true; }
    while (true) {
      SkipWs();
      std::string key;
      if (p_ == end_ || *p_ != '"' || !ParseString(&key)) return false;
      SkipWs();
      if (p_ == end_ || *p_ != ':') return false;
      ++p_;
      JVal v;
      if (!ParseValue(&v)) return false;
      out->obj.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (p_ == end_) return false;
      if (*p_ == ',') { ++p_; continue; }
      if (*p_ == '}') { ++p_; return true; }
      return false;
    }
  }

  bool ParseArray(JVal* out) {
    out->kind = JVal::Kind::kArr;
    ++p_;  // '['
    SkipWs();
    if (p_ != end_ && *p_ == ']') { ++p_; return true; }
    while (true) {
      JVal v;
      if (!ParseValue(&v)) return false;
      out->arr.push_back(std::move(v));
      SkipWs();
      if (p_ == end_) return false;
      if (*p_ == ',') { ++p_; continue; }
      if (*p_ == ']') { ++p_; return true; }
      return false;
    }
  }

  bool ParseString(std::string* out) {
    ++p_;  // '"'
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) return false;
        switch (*p_) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'r': *out += '\r'; break;
          case 'u': {
            if (end_ - p_ < 5) return false;
            char hex[5] = {p_[1], p_[2], p_[3], p_[4], '\0'};
            char* hend = nullptr;
            unsigned long cp = std::strtoul(hex, &hend, 16);
            if (hend != hex + 4 || cp > 0xff) return false;  // we only emit 00XX
            *out += static_cast<char>(cp);
            p_ += 4;
            break;
          }
          default: return false;
        }
        ++p_;
      } else {
        *out += *p_++;
      }
    }
    if (p_ == end_) return false;
    ++p_;  // closing '"'
    return true;
  }

  bool ParseNumber(JVal* out) {
    out->kind = JVal::Kind::kNum;
    const char* start = p_;
    while (p_ != end_ &&
           (std::strchr("+-.0123456789eE", *p_) != nullptr)) {
      ++p_;
    }
    if (p_ == start) return false;
    out->text.assign(start, static_cast<std::size_t>(p_ - start));
    return true;
  }

  const char* p_;
  const char* end_;
};

// ---------------------------------------------------------------------------
// Row <-> line.

std::string ResultsToJson(const core::SimResults& r) {
  std::string s = "{";
  s += "\"mode\":\"" + JsonEscape(r.mode) + "\"";
  s += ",\"cycles\":" + U(r.cycles);
  s += ",\"insts\":" + U(r.insts);
  s += ",\"seconds\":" + D(r.seconds);
  s += ",\"ipc\":" + D(r.ipc);
  s += ",\"l1\":" + D(r.l1_mpki) + ",\"l2\":" + D(r.l2_mpki) +
       ",\"l3\":" + D(r.l3_mpki);
  s += ",\"amr\":" + D(r.atomic_miss_rate);
  s += ",\"atomics\":" + U(r.atomics);
  s += ",\"offloaded\":" + U(r.offloaded_atomics);
  s += ",\"reqf\":" + D(r.req_flits) + ",\"respf\":" + D(r.resp_flits);
  s += ",\"crc\":" + U(r.link_crc_errors);
  s += ",\"retries\":" + U(r.link_retries);
  s += ",\"retryf\":" + D(r.retry_flits);
  s += ",\"poisoned\":" + U(r.poisoned_ops);
  s += ",\"stalls\":" + U(r.vault_stalls);
  s += ",\"fractions\":[" + D(r.frac_atomic_incore) + ',' +
       D(r.frac_atomic_incache) + ',' + D(r.frac_atomic_dep) + ',' +
       D(r.frac_other) + ',' + D(r.frac_frontend) + ',' + D(r.frac_badspec) +
       ',' + D(r.frac_retiring) + ',' + D(r.frac_backend) + ']';
  s += ",\"energy\":[" + D(r.energy.caches_j) + ',' + D(r.energy.link_j) +
       ',' + D(r.energy.fu_j) + ',' + D(r.energy.logic_j) + ',' +
       D(r.energy.dram_j) + ']';
  // The full registry, merged "core." totals included — the compatibility
  // Items() view would silently drop them from the round trip.
  s += ",\"counters\":{";
  bool first = true;
  for (const auto& [k, v] : r.raw.AllItems()) {
    if (!first) s += ',';
    first = false;
    s += '"' + JsonEscape(k) + "\":" + D(v);
  }
  s += "}}";
  return s;
}

bool ResultsFromJson(const JVal& v, core::SimResults* r) {
  if (v.kind != JVal::Kind::kObj) return false;
  auto str = [&](const char* k, std::string* out) {
    const JVal* f = v.Get(k);
    if (f == nullptr || f->kind != JVal::Kind::kStr) return false;
    *out = f->text;
    return true;
  };
  auto u64 = [&](const char* k, std::uint64_t* out) {
    const JVal* f = v.Get(k);
    if (f == nullptr || f->kind != JVal::Kind::kNum) return false;
    *out = f->U64();
    return true;
  };
  auto dbl = [&](const char* k, double* out) {
    const JVal* f = v.Get(k);
    if (f == nullptr || f->kind != JVal::Kind::kNum) return false;
    *out = f->Num();
    return true;
  };
  if (!str("mode", &r->mode)) return false;
  if (!u64("cycles", &r->cycles) || !u64("insts", &r->insts)) return false;
  if (!dbl("seconds", &r->seconds) || !dbl("ipc", &r->ipc)) return false;
  if (!dbl("l1", &r->l1_mpki) || !dbl("l2", &r->l2_mpki) ||
      !dbl("l3", &r->l3_mpki)) {
    return false;
  }
  if (!dbl("amr", &r->atomic_miss_rate)) return false;
  if (!u64("atomics", &r->atomics) || !u64("offloaded", &r->offloaded_atomics))
    return false;
  if (!dbl("reqf", &r->req_flits) || !dbl("respf", &r->resp_flits)) return false;
  if (!u64("crc", &r->link_crc_errors) || !u64("retries", &r->link_retries) ||
      !dbl("retryf", &r->retry_flits) || !u64("poisoned", &r->poisoned_ops) ||
      !u64("stalls", &r->vault_stalls)) {
    return false;
  }
  const JVal* fr = v.Get("fractions");
  if (fr == nullptr || fr->kind != JVal::Kind::kArr || fr->arr.size() != 8)
    return false;
  for (const JVal& e : fr->arr) {
    if (e.kind != JVal::Kind::kNum) return false;
  }
  r->frac_atomic_incore = fr->arr[0].Num();
  r->frac_atomic_incache = fr->arr[1].Num();
  r->frac_atomic_dep = fr->arr[2].Num();
  r->frac_other = fr->arr[3].Num();
  r->frac_frontend = fr->arr[4].Num();
  r->frac_badspec = fr->arr[5].Num();
  r->frac_retiring = fr->arr[6].Num();
  r->frac_backend = fr->arr[7].Num();
  const JVal* en = v.Get("energy");
  if (en == nullptr || en->kind != JVal::Kind::kArr || en->arr.size() != 5)
    return false;
  for (const JVal& e : en->arr) {
    if (e.kind != JVal::Kind::kNum) return false;
  }
  r->energy.caches_j = en->arr[0].Num();
  r->energy.link_j = en->arr[1].Num();
  r->energy.fu_j = en->arr[2].Num();
  r->energy.logic_j = en->arr[3].Num();
  r->energy.dram_j = en->arr[4].Num();
  const JVal* cnt = v.Get("counters");
  if (cnt == nullptr || cnt->kind != JVal::Kind::kObj) return false;
  for (const auto& [k, cv] : cnt->obj) {
    if (cv.kind != JVal::Kind::kNum) return false;
    r->raw.Set(k, cv.Num());
  }
  return true;
}

std::string RowToJson(const SweepRow& row) {
  std::string s = "{";
  s += "\"w\":" + U(row.workload_idx);
  s += ",\"p\":" + U(row.profile_idx);
  s += ",\"c\":" + U(row.config_idx);
  s += ",\"workload\":\"" + JsonEscape(row.workload) + "\"";
  s += ",\"profile\":\"" + JsonEscape(row.profile) + "\"";
  s += ",\"config\":\"" + JsonEscape(row.config_name) + "\"";
  s += ",\"seed\":" + U(row.seed);
  s += ",\"attempts\":" + U(static_cast<std::uint64_t>(row.attempts));
  s += ",\"wall_ms\":" + D(row.wall_ms);
  s += ",\"r\":" + ResultsToJson(row.results);
  s += "}";
  return s;
}

bool RowFromJson(const std::string& line, SweepRow* row) {
  JVal v;
  Parser parser(line);
  if (!parser.Parse(&v) || v.kind != JVal::Kind::kObj) return false;
  const JVal* f = nullptr;
  if ((f = v.Get("w")) == nullptr || f->kind != JVal::Kind::kNum) return false;
  row->workload_idx = static_cast<std::size_t>(f->U64());
  if ((f = v.Get("p")) == nullptr || f->kind != JVal::Kind::kNum) return false;
  row->profile_idx = static_cast<std::size_t>(f->U64());
  if ((f = v.Get("c")) == nullptr || f->kind != JVal::Kind::kNum) return false;
  row->config_idx = static_cast<std::size_t>(f->U64());
  if ((f = v.Get("workload")) == nullptr || f->kind != JVal::Kind::kStr)
    return false;
  row->workload = f->text;
  if ((f = v.Get("profile")) == nullptr || f->kind != JVal::Kind::kStr)
    return false;
  row->profile = f->text;
  if ((f = v.Get("config")) == nullptr || f->kind != JVal::Kind::kStr)
    return false;
  row->config_name = f->text;
  if ((f = v.Get("seed")) == nullptr || f->kind != JVal::Kind::kNum)
    return false;
  row->seed = f->U64();
  if ((f = v.Get("attempts")) == nullptr || f->kind != JVal::Kind::kNum)
    return false;
  row->attempts = static_cast<int>(f->U64());
  if ((f = v.Get("wall_ms")) == nullptr || f->kind != JVal::Kind::kNum)
    return false;
  row->wall_ms = f->Num();
  if ((f = v.Get("r")) == nullptr || !ResultsFromJson(*f, &row->results))
    return false;
  row->status = JobStatus::kOk;
  row->from_journal = true;
  return true;
}

}  // namespace

std::string GridFingerprint(const SweepGrid& grid) {
  // v2: rows serialize the unified registry ("counters" includes the
  // merged core.* totals; the legacy fixed-order "core" array is gone).
  // Bumping the version makes pre-registry journals mismatch cleanly
  // instead of resuming with silently core-less rows.
  std::string fp = "v2|w=";
  for (std::size_t i = 0; i < grid.workloads.size(); ++i) {
    if (i != 0) fp += ',';
    fp += grid.workloads[i];
  }
  fp += "|p=";
  for (std::size_t i = 0; i < grid.profiles.size(); ++i) {
    if (i != 0) fp += ',';
    fp += grid.profiles[i];
  }
  fp += "|c=";
  for (std::size_t i = 0; i < grid.configs.size(); ++i) {
    if (i != 0) fp += ',';
    fp += grid.config_names[i];
    fp += '{';
    fp += grid.configs[i].Describe();
    fp += ';';
    fp += grid.configs[i].hmc.fault.Describe();
    fp += '}';
  }
  fp += StrFormat("|n=%llu|t=%d|cap=%llu|seed=%llu",
                  static_cast<unsigned long long>(grid.vertices),
                  grid.sim_threads,
                  static_cast<unsigned long long>(grid.op_cap),
                  static_cast<unsigned long long>(grid.base_seed));
  return fp;
}

void JournalWriter::Open(const std::string& path,
                         const std::string& fingerprint) {
  Close();
  // A SIGKILL mid-write can leave a torn final line with no newline. If we
  // appended straight after it, the next row would fuse with the fragment
  // and BOTH would be dropped as one malformed line on the next load — so
  // seal the tear with a newline before appending anything.
  bool torn_tail = false;
  if (std::FILE* probe = std::fopen(path.c_str(), "rb")) {
    if (std::fseek(probe, -1, SEEK_END) == 0) {
      torn_tail = std::fgetc(probe) != '\n';
    }
    std::fclose(probe);
  }
  // "a" keeps rows already journaled by an interrupted run; ftell tells us
  // whether a header is still needed.
  f_ = std::fopen(path.c_str(), "a");
  if (f_ == nullptr) {
    GP_THROW("cannot open sweep journal '", path, "' for append");
  }
  if (torn_tail) std::fputc('\n', f_);
  if (std::ftell(f_) == 0) {
    std::string hdr = "{\"graphpim_sweep_journal\":1,\"fingerprint\":\"" +
                      JsonEscape(fingerprint) + "\"}\n";
    std::fwrite(hdr.data(), 1, hdr.size(), f_);
    std::fflush(f_);
  }
}

void JournalWriter::Append(const SweepRow& row) {
  if (f_ == nullptr) return;
  std::string line = RowToJson(row) + "\n";
  std::fwrite(line.data(), 1, line.size(), f_);
  std::fflush(f_);
}

void JournalWriter::AppendPhases(const SweepRow& row,
                                 const trace::PhaseLog& log) {
  if (f_ == nullptr || log.empty()) return;
  // Sidecar line, keyed by the row's grid coordinates. LoadJournal skips
  // these by prefix without counting them as dropped, so a phase-annotated
  // journal resumes exactly like a plain one.
  std::string s = "{\"phases_for\":{";
  s += "\"w\":" + U(row.workload_idx);
  s += ",\"p\":" + U(row.profile_idx);
  s += ",\"c\":" + U(row.config_idx);
  s += "},\"phases\":[";
  bool first = true;
  for (const trace::PhaseRecord& ph : log.phases()) {
    if (!first) s += ',';
    first = false;
    s += "{\"phase\":\"" + JsonEscape(ph.name) + "\"";
    s += ",\"start_ns\":" + D(TicksToNs(ph.start));
    s += ",\"end_ns\":" + D(TicksToNs(ph.end));
    s += ",\"deltas\":{";
    for (std::size_t i = 0; i < ph.deltas.size(); ++i) {
      if (i != 0) s += ',';
      s += '"' + JsonEscape(ph.deltas[i].first) +
           "\":" + trace::FormatStatValue(ph.deltas[i].second);
    }
    s += "}}";
  }
  s += "]}\n";
  std::fwrite(s.data(), 1, s.size(), f_);
  std::fflush(f_);
}

void JournalWriter::AppendSpans(const SweepRow& row,
                                const trace::SpanLog& log) {
  if (f_ == nullptr || log.empty()) return;
  // Same sidecar convention as AppendPhases: keyed by grid coordinates,
  // skipped by prefix on load.
  std::string s = "{\"spans_for\":{";
  s += "\"w\":" + U(row.workload_idx);
  s += ",\"p\":" + U(row.profile_idx);
  s += ",\"c\":" + U(row.config_idx);
  s += "},\"spans\":[";
  bool first = true;
  for (const trace::SpanRecord& sp : log.spans) {
    if (!first) s += ',';
    first = false;
    s += trace::SpanToJson(sp);
  }
  s += "]}\n";
  std::fwrite(s.data(), 1, s.size(), f_);
  std::fflush(f_);
}

void JournalWriter::AppendTimeline(const SweepRow& row,
                                   const telemetry::Timeline& tl) {
  if (f_ == nullptr || tl.empty()) return;
  // Same sidecar convention as AppendPhases: keyed by grid coordinates,
  // skipped by prefix on load. Window bodies reuse the telemetry JSONL
  // renderer so the sidecar and --timeline-out formats stay in lockstep.
  std::string s = "{\"timeline_for\":{";
  s += "\"w\":" + U(row.workload_idx);
  s += ",\"p\":" + U(row.profile_idx);
  s += ",\"c\":" + U(row.config_idx);
  s += "},\"windows\":[";
  const std::string lines = telemetry::ToJsonl(tl);
  bool first = true;
  for (std::size_t pos = 0; pos < lines.size();) {
    std::size_t nl = lines.find('\n', pos);
    if (nl == std::string::npos) nl = lines.size();
    if (!first) s += ',';
    first = false;
    s.append(lines, pos, nl - pos);
    pos = nl + 1;
  }
  s += "]}\n";
  std::fwrite(s.data(), 1, s.size(), f_);
  std::fflush(f_);
}

void JournalWriter::Close() {
  if (f_ != nullptr) {
    std::fclose(f_);
    f_ = nullptr;
  }
}

bool LoadJournal(const std::string& path, JournalData* out) {
  std::ifstream in(path);
  if (!in.is_open()) return false;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (first) {
      first = false;
      JVal v;
      Parser parser(line);
      const JVal* fp = nullptr;
      if (parser.Parse(&v) && v.kind == JVal::Kind::kObj &&
          (fp = v.Get("fingerprint")) != nullptr &&
          fp->kind == JVal::Kind::kStr) {
        out->fingerprint = fp->text;
      } else {
        ++out->dropped_lines;
      }
      continue;
    }
    // Sidecar lines ({"phases_for":...}, {"spans_for":...}) are
    // informational: not rows, not errors — skip without counting them as
    // dropped.
    if (line.compare(0, 14, "{\"phases_for\":") == 0) continue;
    if (line.compare(0, 13, "{\"spans_for\":") == 0) continue;
    if (line.compare(0, 16, "{\"timeline_for\":") == 0) continue;
    SweepRow row;
    if (RowFromJson(line, &row)) {
      out->rows.push_back(std::move(row));
    } else {
      // Malformed or truncated (e.g. SIGKILL mid-write): the row will
      // simply be re-simulated.
      ++out->dropped_lines;
    }
  }
  return true;
}

}  // namespace graphpim::exec
