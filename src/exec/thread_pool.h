// Work-stealing thread pool with task futures, cancellation, and per-task
// wall-time accounting.
//
// Each worker owns a deque: it pops its own work LIFO (cache-warm) and
// steals FIFO from siblings when empty, so a burst of submissions spreads
// across the pool without a single contended queue. External submissions
// are sprayed round-robin; submissions made *from* a worker thread stay on
// that worker's deque until stolen.
//
// Semantics the rest of src/exec relies on:
//   - Submit() returns a TaskFuture; Get() blocks and yields the value, or
//     std::nullopt if the task was cancelled before it started.
//   - Cancel() wins only while the task is still pending; a running task is
//     never interrupted (simulation jobs are not interruptible).
//   - Shutdown() drains every already-submitted task, then joins. Pair it
//     with CancelPending() first for a fast abort.
//   - Task wall time (queue-exit to completion) is recorded per task and
//     aggregated in PoolStats for latency reporting.
#ifndef GRAPHPIM_EXEC_THREAD_POOL_H_
#define GRAPHPIM_EXEC_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/log.h"
#include "common/stats.h"

namespace graphpim::exec {

enum class TaskState { kPending, kRunning, kDone, kCancelled };

const char* ToString(TaskState s);

namespace detail {

// Type-erased per-task shared state; the typed result lives in the
// TaskFuture's derived wrapper.
struct TaskCore {
  std::mutex mu;
  std::condition_variable cv;
  TaskState state = TaskState::kPending;
  double wall_ms = 0.0;
  std::function<void()> run;  // set at Submit(); fills the typed slot

  // Worker-side: kPending -> kRunning. False if the task lost to Cancel().
  bool TryStart() {
    std::lock_guard<std::mutex> lk(mu);
    if (state != TaskState::kPending) return false;
    state = TaskState::kRunning;
    return true;
  }

  void Finish(double ms) {
    {
      std::lock_guard<std::mutex> lk(mu);
      state = TaskState::kDone;
      wall_ms = ms;
    }
    cv.notify_all();
  }

  // Client-side: kPending -> kCancelled. False once the task started.
  bool Cancel() {
    {
      std::lock_guard<std::mutex> lk(mu);
      if (state != TaskState::kPending) return false;
      state = TaskState::kCancelled;
    }
    cv.notify_all();
    return true;
  }

  void Wait() {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [this] {
      return state == TaskState::kDone || state == TaskState::kCancelled;
    });
  }

  // Bounded wait; true if the task settled within `ms`.
  bool WaitFor(double ms) {
    std::unique_lock<std::mutex> lk(mu);
    return cv.wait_for(lk, std::chrono::duration<double, std::milli>(ms), [this] {
      return state == TaskState::kDone || state == TaskState::kCancelled;
    });
  }

  TaskState State() {
    std::lock_guard<std::mutex> lk(mu);
    return state;
  }
};

template <typename T>
struct TaskShared {
  TaskCore core;
  // void-returning tasks store a `true` marker so Get() can still signal
  // ran-vs-cancelled through std::optional.
  using Stored = std::conditional_t<std::is_void_v<T>, bool, T>;
  std::optional<Stored> value;
};

}  // namespace detail

// Handle to a submitted task. Copyable; all copies observe the same task.
template <typename T>
class TaskFuture {
 public:
  using Stored = typename detail::TaskShared<T>::Stored;

  TaskFuture() = default;

  bool valid() const { return s_ != nullptr; }

  // Blocks until the task finished or was cancelled.
  void Wait() const { s_->core.Wait(); }

  // Blocks at most `ms` milliseconds; true if the task settled. The sweep
  // runner's soft watchdog uses this to detect overdue jobs without any
  // ability (or need) to interrupt them.
  bool WaitFor(double ms) const { return s_->core.WaitFor(ms); }

  // Blocks; the task's result, or std::nullopt if it was cancelled before
  // it ever ran. (void tasks yield `true` on completion.)
  std::optional<Stored> Get() const {
    s_->core.Wait();
    std::lock_guard<std::mutex> lk(s_->core.mu);
    return s_->value;
  }

  // Attempts to cancel. True iff the task will never run.
  bool Cancel() const { return s_->core.Cancel(); }

  TaskState state() const { return s_->core.State(); }

  // Execution wall time (ms) of a finished task; 0 before completion.
  double wall_ms() const {
    std::lock_guard<std::mutex> lk(s_->core.mu);
    return s_->core.wall_ms;
  }

 private:
  friend class ThreadPool;
  explicit TaskFuture(std::shared_ptr<detail::TaskShared<T>> s) : s_(std::move(s)) {}
  std::shared_ptr<detail::TaskShared<T>> s_;
};

// Aggregate pool counters (snapshot; monotonically growing).
struct PoolStats {
  std::uint64_t submitted = 0;
  std::uint64_t executed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t steals = 0;   // tasks taken from another worker's deque
  double busy_ms = 0.0;       // summed task execution wall time
  // Occupancy high-water marks (saturation diagnostics, DESIGN.md §13):
  // deepest the deques ever got, and most tasks ever running at once.
  std::uint64_t peak_queued = 0;
  std::uint64_t peak_running = 0;
};

class ThreadPool {
 public:
  // `num_threads` <= 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // True when the calling thread is one of this pool's workers. Blocking
  // helpers use this to fall back to inline execution instead of waiting
  // on the pool from inside it (which could starve it of workers).
  bool OnWorkerThread() const;

  // Schedules `fn` and returns its future. Fatal to call after Shutdown().
  template <typename F>
  auto Submit(F&& fn) -> TaskFuture<std::invoke_result_t<std::decay_t<F>&>> {
    using R = std::invoke_result_t<std::decay_t<F>&>;
    auto shared = std::make_shared<detail::TaskShared<R>>();
    // Raw capture, not shared: the closure lives inside TaskShared, so a
    // shared_ptr capture would be a reference cycle. The deque entry and
    // the returned future pin the object; the worker holds the deque's
    // reference for the duration of the run.
    auto* p = shared.get();
    shared->core.run = [p, fn = std::forward<F>(fn)]() mutable {
      if constexpr (std::is_void_v<R>) {
        fn();
        std::lock_guard<std::mutex> lk(p->core.mu);
        p->value = true;
      } else {
        auto v = fn();
        std::lock_guard<std::mutex> lk(p->core.mu);
        p->value = std::move(v);
      }
    };
    Enqueue(shared, &shared->core);
    return TaskFuture<R>(std::move(shared));
  }

  // Blocks until every submitted task has finished or been cancelled.
  void WaitIdle();

  // Cancels every task still waiting in a deque; running tasks proceed.
  // Returns how many tasks were cancelled.
  std::size_t CancelPending();

  // Drains all pending tasks, then joins the workers. Idempotent; the
  // destructor calls it.
  void Shutdown();

  PoolStats stats() const;

  // Folds the current stats() snapshot into `reg` under "<prefix>.*"
  // (pool.submitted, pool.executed, pool.cancelled, pool.steals,
  // pool.busy_ms, pool.peak_queued, pool.peak_running, pool.threads).
  // Wall-clock occupancy numbers: metadata, NOT covered by any determinism
  // contract — callers must keep them out of byte-identity-gated output.
  void ExportStats(StatRegistry* reg, const std::string& prefix = "pool") const;

 private:
  struct Worker {
    std::mutex mu;
    // Keep-alive owner + raw core pointer: the owner pins the type-erased
    // closure (which itself holds the typed TaskShared alive).
    std::deque<std::pair<std::shared_ptr<void>, detail::TaskCore*>> dq;
    std::thread thread;
  };

  void Enqueue(std::shared_ptr<void> owner, detail::TaskCore* core);
  void WorkerLoop(std::size_t self);
  // Pops own work LIFO, else steals FIFO; `stole` reports which happened.
  std::pair<std::shared_ptr<void>, detail::TaskCore*> TakeTask(std::size_t self,
                                                               bool* stole);
  void TaskRetired();  // bookkeeping after a task finishes or is dropped

  std::vector<std::unique_ptr<Worker>> workers_;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;    // workers sleep here
  std::condition_variable drained_cv_; // WaitIdle()/Shutdown() sleep here
  std::atomic<std::uint64_t> queued_{0};    // tasks sitting in deques
  std::atomic<std::uint64_t> in_flight_{0}; // queued + running
  std::atomic<std::uint64_t> running_{0};   // tasks currently executing
  std::atomic<std::uint64_t> peak_queued_{0};
  std::atomic<std::uint64_t> peak_running_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> next_queue_{0};

  mutable std::mutex stats_mu_;
  PoolStats stats_;
};

}  // namespace graphpim::exec

#endif  // GRAPHPIM_EXEC_THREAD_POOL_H_
