// Shared --progress heartbeat for grid drivers (graphpim_sweep,
// graphpim_serve): one stderr line per retired job with an ETA
// extrapolated from the mean wall time of the jobs finished so far.
//
// The line format is the original graphpim_sweep heartbeat, byte for
// byte. FormatProgressLine is the pure core (unit-testable ETA math);
// StderrHeartbeat wraps it into a SweepRunner-compatible callback. The
// runner invokes on_progress serially under its progress lock, so the
// callback needs no synchronization of its own — but the returned functor
// is also safe to share across harvest threads because its only state is
// the fixed start time.
#ifndef GRAPHPIM_EXEC_PROGRESS_H_
#define GRAPHPIM_EXEC_PROGRESS_H_

#include <cstdio>
#include <functional>
#include <string>

#include "exec/sweep.h"

namespace graphpim::exec {

// One heartbeat line (newline-terminated):
//   "[  3/ 12] bfs      ldbc     GraphPIM-c4    123 ms | ETA 4s"
// with "  FAILED" appended for failed jobs. `elapsed_ms` is wall time
// since the run started; ETA = elapsed/completed * remaining.
std::string FormatProgressLine(const SweepProgress& p, double elapsed_ms);

// Returns an on_progress callback printing FormatProgressLine to `out`
// (nullptr selects stderr), timing from the moment of this call.
std::function<void(const SweepProgress&)> StderrHeartbeat(
    std::FILE* out = nullptr);

}  // namespace graphpim::exec

#endif  // GRAPHPIM_EXEC_PROGRESS_H_
