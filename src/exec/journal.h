// Crash-safe sweep journal (DESIGN.md §9).
//
// An append-only JSONL file: one header line fingerprinting the grid, then
// one line per finished OK row. Rows are appended in grid order as the
// runner harvests them and flushed immediately, so a SIGKILL loses at most
// the line being written; a truncated trailing line is silently dropped on
// load. Doubles are emitted with %.17g (exact round-trip), so a row
// restored by --resume is bit-identical to the row that was journaled —
// which, by the determinism contract, is bit-identical to what re-running
// the job would have produced.
//
// The format is our own narrow JSON subset (objects, arrays, strings,
// numbers); LoadJournal's parser handles exactly that subset and rejects
// anything else by dropping the line, so a corrupt journal degrades to a
// shorter one instead of a crash.
#ifndef GRAPHPIM_EXEC_JOURNAL_H_
#define GRAPHPIM_EXEC_JOURNAL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/trace.h"
#include "exec/sweep.h"
#include "telemetry/timeline.h"

namespace graphpim::exec {

// Stable identity of a grid: workloads, profiles, config names + machine
// descriptors (including fault knobs), sizing, and base seed. A journal
// written under a different fingerprint must not be resumed — the
// coordinates would mean different experiments.
std::string GridFingerprint(const SweepGrid& grid);

class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter() { Close(); }

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  // Opens `path` for append, writing the header line first when the file
  // is new or empty. Throws SimError when the path is unwritable.
  void Open(const std::string& path, const std::string& fingerprint);

  bool is_open() const { return f_ != nullptr; }

  // Appends one finished OK row and flushes it.
  void Append(const SweepRow& row);

  // Appends a `{"phases_for":{coords},"phases":[...]}` sidecar line with
  // the row's per-superstep counter deltas. LoadJournal skips sidecar
  // lines (they are annotations, not rows), so a resume neither needs nor
  // loses them. No-op when the log is empty.
  void AppendPhases(const SweepRow& row, const trace::PhaseLog& log);

  // Appends a `{"spans_for":{coords},"spans":[...]}` sidecar line with the
  // row's sampled transaction spans (the flight-recorder output under
  // trace.sample_rate > 0). Skipped by LoadJournal like phase sidecars.
  // No-op when the log is empty.
  void AppendSpans(const SweepRow& row, const trace::SpanLog& log);

  // Appends a `{"timeline_for":{coords},"windows":[...]}` sidecar line
  // with the row's telemetry windows (telemetry.window_ns > 0). Skipped
  // by LoadJournal like the other sidecars. No-op on an empty timeline.
  void AppendTimeline(const SweepRow& row, const telemetry::Timeline& tl);

  void Close();

 private:
  std::FILE* f_ = nullptr;
};

struct JournalData {
  std::string fingerprint;
  std::vector<SweepRow> rows;     // all restored rows are status=kOk
  std::size_t dropped_lines = 0;  // malformed/truncated lines skipped
};

// Loads a journal. False when the file does not exist (fresh start); a
// file with an unreadable header loads as zero rows with an empty
// fingerprint, which the runner then rejects as a mismatch.
bool LoadJournal(const std::string& path, JournalData* out);

}  // namespace graphpim::exec

#endif  // GRAPHPIM_EXEC_JOURNAL_H_
