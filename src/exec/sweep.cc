#include "exec/sweep.h"

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "common/config.h"
#include "common/log.h"
#include "common/random.h"
#include "common/string_util.h"
#include "exec/journal.h"
#include "exec/thread_pool.h"
#include "fault/fault.h"

namespace graphpim::exec {

namespace {

// Salt folded into the cell seed for a watchdog retry, so the speculative
// rerun draws a decorrelated trace/fault stream from the (possibly
// pathological) original.
constexpr std::uint64_t kRetrySalt = 0x72657472792d3031ULL;  // "retry-01"

// Keys that shape the job matrix itself; every machine knob
// (link_ber, num_cubes, topology, ...) is owned by SimConfig's field table
// and routed through SimConfig::FromConfig, so the grid spec accepts new
// knobs the moment the table grows a row.
constexpr const char* kStructuralKeys[] = {"workloads", "profiles", "modes",
                                           "vertices",  "threads",  "opcap",
                                           "seed"};

// num_cubes is special: it is the one machine knob that may carry a comma
// list, expanding the config axis (modes x cube counts) for cube-scaling
// sweeps. Both the flat and the hmc.-qualified spelling are accepted.
constexpr const char* kCubeAxisKeys[] = {"num_cubes", "num-cubes",
                                         "hmc.num_cubes"};

std::string AcceptedGridKeys() {
  std::string list;
  for (const char* k : kStructuralKeys) {
    if (!list.empty()) list += "|";
    list += k;
  }
  for (const std::string& k : core::SimConfig::ConfigKeys()) {
    list += "|" + k;
  }
  return list;
}

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Checked numeric parses with the grid key in the diagnostic. These are
// user errors, so they throw SimError (recoverable) rather than abort.
std::uint64_t ParseGridUint(const std::string& key, const std::string& val) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(val.c_str(), &end, 0);
  if (end == nullptr || end == val.c_str() || *end != '\0') {
    GP_THROW("grid spec key '", key, "': '", val, "' is not an integer");
  }
  return v;
}

double ParseGridDouble(const std::string& key, const std::string& val) {
  char* end = nullptr;
  const double v = std::strtod(val.c_str(), &end);
  if (end == nullptr || end == val.c_str() || *end != '\0') {
    GP_THROW("grid spec key '", key, "': '", val, "' is not a number");
  }
  return v;
}

void RejectDuplicates(const std::vector<std::string>& names, const char* what) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      if (names[i] == names[j]) {
        GP_THROW("duplicate ", what, " '", names[i], "' in grid spec");
      }
    }
  }
}

}  // namespace

std::uint64_t DeriveCellSeed(std::uint64_t base_seed, std::size_t workload_idx,
                             std::size_t profile_idx) {
  // Two SplitMix64 rounds: one to decorrelate the user seed, one to fold in
  // the cell coordinates. Purely value-dependent, so stable everywhere.
  SplitMix64 a(base_seed);
  const std::uint64_t mixed = a.Next();
  SplitMix64 b(mixed ^ ((static_cast<std::uint64_t>(workload_idx) << 32) |
                        static_cast<std::uint64_t>(profile_idx)));
  return b.Next();
}

const char* ToString(JobStatus s) {
  return s == JobStatus::kOk ? "ok" : "failed";
}

const SweepRow* SweepResultTable::Find(const std::string& workload,
                                       const std::string& profile,
                                       const std::string& config_name) const {
  for (const SweepRow& r : rows) {
    if (r.workload == workload && r.profile == profile &&
        r.config_name == config_name) {
      return &r;
    }
  }
  return nullptr;
}

double SweepResultTable::SpeedupVsFirstConfig(const SweepRow& row) const {
  for (const SweepRow& r : rows) {
    if (r.workload_idx == row.workload_idx && r.profile_idx == row.profile_idx &&
        r.config_idx == 0) {
      if (row.results.cycles == 0) return 0.0;
      return static_cast<double>(r.results.cycles) /
             static_cast<double>(row.results.cycles);
    }
  }
  return 0.0;
}

SweepResultTable SweepRunner::Run(const SweepGrid& grid) const {
  GP_CHECK(!grid.workloads.empty(), "sweep grid has no workloads");
  GP_CHECK(!grid.profiles.empty(), "sweep grid has no profiles");
  GP_CHECK(!grid.configs.empty(), "sweep grid has no configs");
  GP_CHECK(grid.config_names.size() == grid.configs.size(),
           "config_names must parallel configs");
  for (const core::SimConfig& c : grid.configs) {
    GP_CHECK(c.num_cores >= grid.sim_threads,
             "config simulates fewer cores than the trace has streams");
  }
  // Every config of a cell replays the ONE shared trace, and pmem.enable
  // decides whether that trace carries flush/fence discipline — so it must
  // be uniform across the grid (the fingerprint covers pmem.* via
  // Describe(), so --resume already refuses cross-persistence splices).
  for (const core::SimConfig& c : grid.configs) {
    if (c.pmem.enable != grid.configs.front().pmem.enable) {
      GP_THROW("config key 'pmem.enable' must be uniform across a sweep "
               "grid: all configs replay one shared trace, which either "
               "carries persist ops or does not");
    }
  }
  // Same reasoning for the ann.* block: the hnsw workload bakes the knob
  // values into the ONE shared trace at generation time, so per-config
  // ann values cannot take effect and almost certainly mean a mis-specified
  // grid (sweep ann knobs as grid axes instead).
  for (const core::SimConfig& c : grid.configs) {
    if (c.ann != grid.configs.front().ann) {
      GP_THROW("config keys 'ann.*' must be uniform across a sweep grid: "
               "all configs replay one shared trace, which is generated "
               "with one ann parameter block");
    }
  }

  const auto sweep_t0 = std::chrono::steady_clock::now();
  const std::size_t num_cells = grid.NumCells();
  const std::size_t num_configs = grid.configs.size();
  const std::size_t total = grid.NumJobs();

  struct JobOut {
    std::optional<core::SimResults> results;  // empty on failure
    std::string error;
    double wall_ms = 0.0;
    int attempts = 1;
    trace::PhaseLog phases;  // populated only when journaling phases
    trace::SpanLog spans;    // populated when the config samples spans
    telemetry::Timeline timeline;  // populated when telemetry.window_ns > 0
  };

  // Phase capture costs one registry merge per superstep, so only pay for
  // it when there is a journal to carry the sidecar lines.
  const bool want_phases = opts_.journal_phases && !opts_.journal_path.empty();
  // Span capture is keyed off the config itself (trace.sample_rate > 0):
  // the recorder runs either way to fold span.* stats, so the only question
  // is whether to keep the log for a journal sidecar.
  const bool journal_open = !opts_.journal_path.empty();

  // Resume: restore journaled rows keyed by flat grid index. The
  // fingerprint gate makes a stale journal (different grid) an error
  // instead of a silent wrong-answer.
  const std::string fingerprint =
      opts_.journal_path.empty() ? std::string() : GridFingerprint(grid);
  std::vector<std::unique_ptr<SweepRow>> restored(total);
  if (opts_.resume) {
    GP_CHECK(!opts_.journal_path.empty(), "resume requires a journal path");
    JournalData jd;
    if (LoadJournal(opts_.journal_path, &jd)) {
      if (jd.fingerprint != fingerprint) {
        GP_THROW("sweep journal '", opts_.journal_path,
                 "' was written for a different grid (fingerprint mismatch); "
                 "delete it or point --journal elsewhere to start fresh");
      }
      for (SweepRow& r : jd.rows) {
        if (r.workload_idx >= grid.workloads.size() ||
            r.profile_idx >= grid.profiles.size() ||
            r.config_idx >= num_configs) {
          continue;
        }
        const std::size_t idx =
            (r.workload_idx * grid.profiles.size() + r.profile_idx) *
                num_configs +
            r.config_idx;
        if (restored[idx] == nullptr) {
          restored[idx] = std::make_unique<SweepRow>(std::move(r));
        }
      }
    }
  }

  JournalWriter writer;
  if (!opts_.journal_path.empty()) writer.Open(opts_.journal_path, fingerprint);

  ThreadPool pool(opts_.jobs);

  // Cell tasks build the shared Experiment, then fan the per-config replay
  // jobs out from the worker thread itself, so replays start the moment
  // their trace exists. The main thread harvests futures in grid order.
  std::mutex mu;
  std::condition_variable cell_cv;
  std::vector<TaskFuture<JobOut>> job_futs(total);
  std::vector<char> cell_ready(num_cells, 0);
  std::vector<double> cell_build_ms(num_cells, 0.0);
  std::vector<std::string> cell_error(num_cells);

  std::mutex progress_mu;
  std::size_t completed = 0;
  auto report_progress = [&](std::size_t wi, std::size_t pi, std::size_t k,
                             double wall_ms, JobStatus status) {
    if (!opts_.on_progress) return;
    std::lock_guard<std::mutex> lk(progress_mu);
    ++completed;
    SweepProgress p;
    p.completed = completed;
    p.total = total;
    p.workload = grid.workloads[wi];
    p.profile = grid.profiles[pi];
    p.config_name = grid.config_names[k];
    p.wall_ms = wall_ms;
    p.status = status;
    opts_.on_progress(p);
  };

  for (std::size_t ci = 0; ci < num_cells; ++ci) {
    const std::size_t wi = ci / grid.profiles.size();
    const std::size_t pi = ci % grid.profiles.size();

    // Configs this cell still has to simulate (the rest came back from the
    // journal). A fully-restored cell skips the Experiment build entirely.
    std::vector<std::size_t> needed;
    for (std::size_t k = 0; k < num_configs; ++k) {
      if (restored[ci * num_configs + k] == nullptr) needed.push_back(k);
    }
    if (needed.empty()) {
      cell_ready[ci] = 1;  // pre-pool, no lock needed
      continue;
    }

    pool.Submit([&, ci, wi, pi, needed] {
      const auto build_t0 = std::chrono::steady_clock::now();
      const std::uint64_t cell_seed = DeriveCellSeed(grid.base_seed, wi, pi);
      std::shared_ptr<core::Experiment> exp;
      try {
        core::Experiment::Options eo;
        eo.num_threads = grid.sim_threads;
        eo.seed = cell_seed;
        eo.op_cap = grid.op_cap;
        // Uniform across the grid (prevalidated above).
        eo.params.ann = grid.configs.front().ann;
        // Uniform across the grid (prevalidated above): a persistent grid
        // generates the full flush/fence discipline into the shared trace.
        if (grid.configs.front().pmem.enable) {
          eo.persist = pmem::PersistMode::kFull;
        }
        exp = std::make_shared<core::Experiment>(
            grid.profiles[pi], grid.vertices, grid.workloads[wi], eo);
      } catch (const std::exception& e) {
        // The cell is unbuildable (bad workload/profile name, degenerate
        // graph, ...): every job of the cell fails with this message, and
        // the rest of the grid proceeds.
        {
          std::lock_guard<std::mutex> lk(mu);
          cell_error[ci] = e.what();
          cell_build_ms[ci] = MsSince(build_t0);
          cell_ready[ci] = 1;
        }
        cell_cv.notify_all();
        return;
      }
      const double build_ms = MsSince(build_t0);

      std::vector<TaskFuture<JobOut>> futs;
      futs.reserve(needed.size());
      for (std::size_t k : needed) {
        futs.push_back(pool.Submit([&, exp, cell_seed, wi, pi, k] {
          const auto run_t0 = std::chrono::steady_clock::now();
          JobOut out;
          // Jobs must not leak exceptions into the pool (a throwing task
          // would take its worker thread down): a failed replay becomes a
          // status=kFailed row instead.
          try {
            core::SimConfig cfg = grid.configs[k];
            cfg.hmc.fault.seed = fault::DeriveFaultSeed(cell_seed, k);
            core::RunOptions ro;
            if (want_phases) ro.phases = &out.phases;
            if (journal_open && cfg.trace_sample_rate > 0.0) {
              ro.spans = &out.spans;
            }
            // Timeline sidecars follow the span convention: captured when
            // the journal can carry them and the config turns windows on.
            if (journal_open && cfg.telemetry_window_ns > 0.0) {
              ro.timeline = &out.timeline;
            }
            out.results = exp->Run(cfg, ro);
          } catch (const std::exception& e) {
            out.error = e.what();
          }
          out.wall_ms = MsSince(run_t0);
          report_progress(wi, pi, k, out.wall_ms,
                          out.results.has_value() ? JobStatus::kOk
                                                  : JobStatus::kFailed);
          return out;
        }));
      }
      {
        std::lock_guard<std::mutex> lk(mu);
        for (std::size_t i = 0; i < needed.size(); ++i) {
          job_futs[ci * num_configs + needed[i]] = std::move(futs[i]);
        }
        cell_build_ms[ci] = build_ms;
        cell_ready[ci] = 1;
      }
      cell_cv.notify_all();
    });
  }

  SweepResultTable table;
  table.rows.reserve(total);
  for (std::size_t ci = 0; ci < num_cells; ++ci) {
    {
      std::unique_lock<std::mutex> lk(mu);
      cell_cv.wait(lk, [&] { return cell_ready[ci] != 0; });
    }
    table.build_wall_ms += cell_build_ms[ci];
    const std::size_t wi = ci / grid.profiles.size();
    const std::size_t pi = ci % grid.profiles.size();
    const std::uint64_t cell_seed = DeriveCellSeed(grid.base_seed, wi, pi);
    for (std::size_t k = 0; k < num_configs; ++k) {
      const std::size_t idx = ci * num_configs + k;

      if (restored[idx] != nullptr) {
        SweepRow row = std::move(*restored[idx]);
        ++table.resumed_rows;
        report_progress(wi, pi, k, 0.0, JobStatus::kOk);
        table.rows.push_back(std::move(row));
        continue;
      }

      SweepRow row;
      row.workload_idx = wi;
      row.profile_idx = pi;
      row.config_idx = k;
      row.workload = grid.workloads[wi];
      row.profile = grid.profiles[pi];
      row.config_name = grid.config_names[k];
      row.seed = cell_seed;

      if (!cell_error[ci].empty()) {
        row.status = JobStatus::kFailed;
        row.error = cell_error[ci];
        ++table.failed_rows;
        report_progress(wi, pi, k, 0.0, JobStatus::kFailed);
        table.rows.push_back(std::move(row));
        continue;
      }

      auto& fut = job_futs[idx];
      JobOut out;
      {
        // Soft watchdog: an overdue job gets ONE speculative retry with a
        // decorrelated seed. The original is never interrupted (simulation
        // jobs are not interruptible) and deterministically wins if it
        // completes OK; the retry only replaces a *failed* original.
        TaskFuture<JobOut> retry_fut;
        std::uint64_t retry_seed = 0;
        if (opts_.job_timeout_ms > 0 && !fut.WaitFor(opts_.job_timeout_ms)) {
          retry_seed = fault::DeriveFaultSeed(cell_seed ^ kRetrySalt, k);
          retry_fut = pool.Submit([&, retry_seed, wi, pi, k] {
            const auto t0 = std::chrono::steady_clock::now();
            JobOut r;
            r.attempts = 2;
            try {
              core::Experiment::Options eo;
              eo.num_threads = grid.sim_threads;
              eo.seed = retry_seed;
              eo.op_cap = grid.op_cap;
              eo.params.ann = grid.configs.front().ann;
              core::Experiment exp(grid.profiles[pi], grid.vertices,
                                   grid.workloads[wi], eo);
              core::SimConfig cfg = grid.configs[k];
              cfg.hmc.fault.seed = fault::DeriveFaultSeed(retry_seed, k);
              core::RunOptions ro;
              if (want_phases) ro.phases = &r.phases;
              if (journal_open && cfg.trace_sample_rate > 0.0) {
                ro.spans = &r.spans;
              }
              if (journal_open && cfg.telemetry_window_ns > 0.0) {
                ro.timeline = &r.timeline;
              }
              r.results = exp.Run(cfg, ro);
            } catch (const std::exception& e) {
              r.error = e.what();
            }
            r.wall_ms = MsSince(t0);
            return r;
          });
        }
        auto o = fut.Get();
        GP_CHECK(o.has_value(), "sweep job was cancelled mid-run");
        out = std::move(*o);
        if (retry_fut.valid()) {
          if (out.results.has_value()) {
            retry_fut.Cancel();  // best-effort; a running retry is discarded
            out.attempts = 2;
          } else {
            auto r = retry_fut.Get();
            GP_CHECK(r.has_value(), "retry job was cancelled mid-run");
            if (r->results.has_value()) {
              out = std::move(*r);
              row.seed = retry_seed;  // row reflects the seed actually used
            } else {
              out.attempts = 2;
              out.error += "; retry: " + r->error;
            }
          }
        }
      }

      row.wall_ms = out.wall_ms;
      row.attempts = out.attempts;
      if (out.results.has_value()) {
        row.results = std::move(*out.results);
        // Journal only freshly-computed OK rows: failed rows must be
        // retried by a resume, and restored rows are already on disk.
        writer.Append(row);
        if (want_phases) writer.AppendPhases(row, out.phases);
        if (!out.spans.empty()) writer.AppendSpans(row, out.spans);
        if (!out.timeline.empty()) writer.AppendTimeline(row, out.timeline);
      } else {
        row.status = JobStatus::kFailed;
        row.error = out.error;
        ++table.failed_rows;
      }
      table.job_wall_ms.Record(row.wall_ms);
      table.run_wall_ms += row.wall_ms;
      table.rows.push_back(std::move(row));
    }
  }
  pool.Shutdown();
  writer.Close();
  table.total_wall_ms = MsSince(sweep_t0);
  return table;
}

std::vector<core::Mode> ParseModeList(const std::string& arg) {
  std::vector<core::Mode> modes;
  for (const std::string& tok : Split(arg, ',')) {
    const std::string m = Trim(tok);
    if (m.empty()) continue;
    if (m == "all") {
      modes.push_back(core::Mode::kBaseline);
      modes.push_back(core::Mode::kUPei);
      modes.push_back(core::Mode::kGraphPim);
    } else if (m == "baseline") {
      modes.push_back(core::Mode::kBaseline);
    } else if (m == "upei") {
      modes.push_back(core::Mode::kUPei);
    } else if (m == "graphpim") {
      modes.push_back(core::Mode::kGraphPim);
    } else if (m == "ucnopim") {
      modes.push_back(core::Mode::kUncacheNoPim);
    } else {
      GP_THROW("unknown mode '", m, "' (want baseline|upei|graphpim|ucnopim|all)");
    }
  }
  if (modes.empty()) GP_THROW("empty mode list");
  return modes;
}

SweepGrid ParseGridSpec(const std::string& spec) {
  SweepGrid grid;
  grid.profiles.clear();
  std::vector<core::Mode> modes;
  std::vector<std::uint64_t> cube_counts;  // config axis; empty = table default
  graphpim::Config machine;  // scalar machine knobs, handed to FromConfig

  const std::vector<std::string> machine_keys = core::SimConfig::ConfigKeys();
  auto is_machine_key = [&](const std::string& k) {
    for (const std::string& mk : machine_keys)
      if (k == mk) return true;
    return false;
  };
  auto is_cube_axis_key = [](const std::string& k) {
    for (const char* ck : kCubeAxisKeys)
      if (k == ck) return true;
    return false;
  };

  for (const std::string& field : Split(spec, ';')) {
    const std::string f = Trim(field);
    if (f.empty()) continue;
    const auto eq = f.find('=');
    if (eq == std::string::npos) {
      GP_THROW("grid spec field '", f, "' is not key=value (accepted keys: ",
               AcceptedGridKeys(), ")");
    }
    const std::string key = Trim(f.substr(0, eq));
    const std::string val = Trim(f.substr(eq + 1));
    if (key == "workloads") {
      for (const std::string& w : Split(val, ','))
        if (!Trim(w).empty()) grid.workloads.push_back(Trim(w));
    } else if (key == "profiles") {
      for (const std::string& p : Split(val, ','))
        if (!Trim(p).empty()) grid.profiles.push_back(Trim(p));
    } else if (key == "modes") {
      modes = ParseModeList(val);
    } else if (key == "vertices") {
      grid.vertices = static_cast<VertexId>(ParseGridUint(key, val));
      if (grid.vertices == 0) GP_THROW("grid spec key 'vertices' must be > 0");
    } else if (key == "threads") {
      grid.sim_threads = static_cast<int>(ParseGridUint(key, val));
      if (grid.sim_threads < 1) GP_THROW("grid spec key 'threads' must be >= 1");
    } else if (key == "opcap") {
      grid.op_cap = ParseGridUint(key, val);
    } else if (key == "seed") {
      grid.base_seed = ParseGridUint(key, val);
    } else if (is_cube_axis_key(key)) {
      // Comma list expands the config axis: modes x cube counts.
      for (const std::string& tok : Split(val, ',')) {
        const std::string c = Trim(tok);
        if (c.empty()) continue;
        const std::uint64_t nc = ParseGridUint("num_cubes", c);
        // 0 doubles as the leave-default sentinel below, so reject it here
        // rather than silently running the table default.
        if (nc < 1) GP_THROW("grid spec key 'num_cubes' needs counts >= 1");
        cube_counts.push_back(nc);
      }
      if (cube_counts.empty()) {
        GP_THROW("grid spec key 'num_cubes' needs at least one count");
      }
    } else if (key == "full" || key == "topology") {
      machine.Set(key, val);  // non-numeric knobs; FromConfig validates
    } else if (is_machine_key(key)) {
      // Numeric machine knob: check it parses here (a grid-spec typo is a
      // SimError, not a GP_FATAL deep in Config), then let FromConfig /
      // Validate own the range check so the grid spec and the tool CLIs
      // reject identically.
      ParseGridDouble(key, val);
      machine.Set(key, val);
    } else {
      GP_THROW("unknown grid spec key '", key, "' (accepted keys: ",
               AcceptedGridKeys(), ")");
    }
  }

  if (grid.workloads.empty()) {
    GP_THROW("grid spec needs workloads=... (accepted keys: ",
             AcceptedGridKeys(), ")");
  }
  RejectDuplicates(grid.workloads, "workload");
  RejectDuplicates(grid.profiles, "profile");
  if (grid.profiles.empty()) grid.profiles.push_back("ldbc");
  if (modes.empty()) modes = ParseModeList("all");
  machine.Set("threads", std::to_string(grid.sim_threads));

  // The config axis is modes x cube counts; names stay the bare mode
  // string unless the sweep actually scales cubes (then "GraphPIM-c4").
  const bool cube_axis = cube_counts.size() > 1;
  if (cube_counts.empty()) cube_counts.push_back(0);  // 0 = leave default
  for (core::Mode m : modes) {
    for (std::uint64_t nc : cube_counts) {
      graphpim::Config mc = machine;
      if (nc != 0) mc.Set("num_cubes", std::to_string(nc));
      // Per-job fault seeds are derived from the cell seed at run time
      // (SweepRunner), so the parsed config's seed stays zero.
      grid.configs.push_back(core::SimConfig::FromConfig(mc, m));
      std::string name = ToString(m);
      if (cube_axis) {
        name += StrFormat("-c%llu", static_cast<unsigned long long>(nc));
      }
      grid.config_names.push_back(name);
    }
  }
  RejectDuplicates(grid.config_names, "mode");
  return grid;
}

}  // namespace graphpim::exec
