#include "exec/sweep.h"

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "common/log.h"
#include "common/random.h"
#include "common/string_util.h"
#include "exec/thread_pool.h"

namespace graphpim::exec {

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Checked numeric parse with the grid key in the diagnostic (matches the
// Config::GetInt idiom; a stray std::stoull would abort uncaught instead).
std::uint64_t ParseGridUint(const std::string& key, const std::string& val) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(val.c_str(), &end, 0);
  if (end == nullptr || end == val.c_str() || *end != '\0') {
    GP_FATAL("grid spec key '", key, "': '", val, "' is not an integer");
  }
  return v;
}

}  // namespace

std::uint64_t DeriveCellSeed(std::uint64_t base_seed, std::size_t workload_idx,
                             std::size_t profile_idx) {
  // Two SplitMix64 rounds: one to decorrelate the user seed, one to fold in
  // the cell coordinates. Purely value-dependent, so stable everywhere.
  SplitMix64 a(base_seed);
  const std::uint64_t mixed = a.Next();
  SplitMix64 b(mixed ^ ((static_cast<std::uint64_t>(workload_idx) << 32) |
                        static_cast<std::uint64_t>(profile_idx)));
  return b.Next();
}

const SweepRow* SweepResultTable::Find(const std::string& workload,
                                       const std::string& profile,
                                       const std::string& config_name) const {
  for (const SweepRow& r : rows) {
    if (r.workload == workload && r.profile == profile &&
        r.config_name == config_name) {
      return &r;
    }
  }
  return nullptr;
}

double SweepResultTable::SpeedupVsFirstConfig(const SweepRow& row) const {
  for (const SweepRow& r : rows) {
    if (r.workload_idx == row.workload_idx && r.profile_idx == row.profile_idx &&
        r.config_idx == 0) {
      if (row.results.cycles == 0) return 0.0;
      return static_cast<double>(r.results.cycles) /
             static_cast<double>(row.results.cycles);
    }
  }
  return 0.0;
}

SweepResultTable SweepRunner::Run(const SweepGrid& grid) const {
  GP_CHECK(!grid.workloads.empty(), "sweep grid has no workloads");
  GP_CHECK(!grid.profiles.empty(), "sweep grid has no profiles");
  GP_CHECK(!grid.configs.empty(), "sweep grid has no configs");
  GP_CHECK(grid.config_names.size() == grid.configs.size(),
           "config_names must parallel configs");
  for (const core::SimConfig& c : grid.configs) {
    GP_CHECK(c.num_cores >= grid.sim_threads,
             "config simulates fewer cores than the trace has streams");
  }

  const auto sweep_t0 = std::chrono::steady_clock::now();
  const std::size_t num_cells = grid.NumCells();
  const std::size_t num_configs = grid.configs.size();
  const std::size_t total = grid.NumJobs();

  struct JobOut {
    core::SimResults results;
    double wall_ms = 0.0;
  };

  ThreadPool pool(opts_.jobs);

  // Cell tasks build the shared Experiment, then fan the per-config replay
  // jobs out from the worker thread itself, so replays start the moment
  // their trace exists. The main thread harvests futures in grid order.
  std::mutex mu;
  std::condition_variable cell_cv;
  std::vector<TaskFuture<JobOut>> job_futs(total);
  std::vector<char> cell_ready(num_cells, 0);
  std::vector<double> cell_build_ms(num_cells, 0.0);

  std::mutex progress_mu;
  std::size_t completed = 0;

  for (std::size_t ci = 0; ci < num_cells; ++ci) {
    const std::size_t wi = ci / grid.profiles.size();
    const std::size_t pi = ci % grid.profiles.size();
    pool.Submit([&, ci, wi, pi] {
      const auto build_t0 = std::chrono::steady_clock::now();
      core::Experiment::Options eo;
      eo.num_threads = grid.sim_threads;
      eo.seed = DeriveCellSeed(grid.base_seed, wi, pi);
      eo.op_cap = grid.op_cap;
      auto exp = std::make_shared<core::Experiment>(
          grid.profiles[pi], grid.vertices, grid.workloads[wi], eo);
      const double build_ms = MsSince(build_t0);

      std::vector<TaskFuture<JobOut>> futs;
      futs.reserve(num_configs);
      for (std::size_t k = 0; k < num_configs; ++k) {
        futs.push_back(pool.Submit([&, exp, wi, pi, k] {
          const auto run_t0 = std::chrono::steady_clock::now();
          JobOut out;
          out.results = exp->Run(grid.configs[k]);
          out.wall_ms = MsSince(run_t0);
          if (opts_.on_progress) {
            std::lock_guard<std::mutex> lk(progress_mu);
            ++completed;
            SweepProgress p;
            p.completed = completed;
            p.total = total;
            p.workload = grid.workloads[wi];
            p.profile = grid.profiles[pi];
            p.config_name = grid.config_names[k];
            p.wall_ms = out.wall_ms;
            opts_.on_progress(p);
          }
          return out;
        }));
      }
      {
        std::lock_guard<std::mutex> lk(mu);
        for (std::size_t k = 0; k < num_configs; ++k) {
          job_futs[ci * num_configs + k] = std::move(futs[k]);
        }
        cell_build_ms[ci] = build_ms;
        cell_ready[ci] = 1;
      }
      cell_cv.notify_all();
    });
  }

  SweepResultTable table;
  table.rows.reserve(total);
  for (std::size_t ci = 0; ci < num_cells; ++ci) {
    {
      std::unique_lock<std::mutex> lk(mu);
      cell_cv.wait(lk, [&] { return cell_ready[ci] != 0; });
    }
    table.build_wall_ms += cell_build_ms[ci];
    const std::size_t wi = ci / grid.profiles.size();
    const std::size_t pi = ci % grid.profiles.size();
    for (std::size_t k = 0; k < num_configs; ++k) {
      auto out = job_futs[ci * num_configs + k].Get();
      GP_CHECK(out.has_value(), "sweep job was cancelled mid-run");
      SweepRow row;
      row.workload_idx = wi;
      row.profile_idx = pi;
      row.config_idx = k;
      row.workload = grid.workloads[wi];
      row.profile = grid.profiles[pi];
      row.config_name = grid.config_names[k];
      row.seed = DeriveCellSeed(grid.base_seed, wi, pi);
      row.results = std::move(out->results);
      row.wall_ms = out->wall_ms;
      table.job_wall_ms.Record(row.wall_ms);
      table.run_wall_ms += row.wall_ms;
      table.rows.push_back(std::move(row));
    }
  }
  pool.Shutdown();
  table.total_wall_ms = MsSince(sweep_t0);
  return table;
}

std::vector<core::Mode> ParseModeList(const std::string& arg) {
  std::vector<core::Mode> modes;
  for (const std::string& tok : Split(arg, ',')) {
    const std::string m = Trim(tok);
    if (m.empty()) continue;
    if (m == "all") {
      modes.push_back(core::Mode::kBaseline);
      modes.push_back(core::Mode::kUPei);
      modes.push_back(core::Mode::kGraphPim);
    } else if (m == "baseline") {
      modes.push_back(core::Mode::kBaseline);
    } else if (m == "upei") {
      modes.push_back(core::Mode::kUPei);
    } else if (m == "graphpim") {
      modes.push_back(core::Mode::kGraphPim);
    } else if (m == "ucnopim") {
      modes.push_back(core::Mode::kUncacheNoPim);
    } else {
      GP_FATAL("unknown mode '", m, "' (want baseline|upei|graphpim|ucnopim|all)");
    }
  }
  GP_CHECK(!modes.empty(), "empty mode list");
  return modes;
}

SweepGrid ParseGridSpec(const std::string& spec) {
  SweepGrid grid;
  grid.profiles.clear();
  std::vector<core::Mode> modes;
  bool full = false;

  for (const std::string& field : Split(spec, ';')) {
    const std::string f = Trim(field);
    if (f.empty()) continue;
    const auto eq = f.find('=');
    GP_CHECK(eq != std::string::npos, "grid spec field '", f, "' is not key=value");
    const std::string key = Trim(f.substr(0, eq));
    const std::string val = Trim(f.substr(eq + 1));
    if (key == "workloads") {
      for (const std::string& w : Split(val, ','))
        if (!Trim(w).empty()) grid.workloads.push_back(Trim(w));
    } else if (key == "profiles") {
      for (const std::string& p : Split(val, ','))
        if (!Trim(p).empty()) grid.profiles.push_back(Trim(p));
    } else if (key == "modes") {
      modes = ParseModeList(val);
    } else if (key == "vertices") {
      grid.vertices = static_cast<VertexId>(ParseGridUint(key, val));
    } else if (key == "threads") {
      grid.sim_threads = static_cast<int>(ParseGridUint(key, val));
    } else if (key == "opcap") {
      grid.op_cap = ParseGridUint(key, val);
    } else if (key == "seed") {
      grid.base_seed = ParseGridUint(key, val);
    } else if (key == "full") {
      full = (val == "1" || val == "true");
    } else {
      GP_FATAL("unknown grid spec key '", key,
               "' (want workloads|profiles|modes|vertices|threads|opcap|seed|full)");
    }
  }

  GP_CHECK(!grid.workloads.empty(), "grid spec needs workloads=...");
  if (grid.profiles.empty()) grid.profiles.push_back("ldbc");
  if (modes.empty()) modes = ParseModeList("all");
  for (core::Mode m : modes) {
    core::SimConfig c =
        full ? core::SimConfig::Paper(m) : core::SimConfig::Scaled(m);
    c.num_cores = grid.sim_threads;
    grid.configs.push_back(c);
    grid.config_names.push_back(ToString(m));
  }
  return grid;
}

}  // namespace graphpim::exec
