#!/usr/bin/env bash
# Crash/recovery smoke test for the persistent PMR (DESIGN.md §14).
#
# Runs one seeded crash-sweep over the Graph Update workload and asserts:
#   1. the full persist discipline passes the persist-ordering checker and
#      every crash/recovery cycle recovers consistently;
#   2. the missing-fence mutant is flagged by the checker (the seeded bug
#      the subsystem exists to catch);
#   3. the crash recovery table is bit-identical at --jobs=1 and --jobs=4
#      (crash evaluation is post-processing over one deterministic replay).
#
# Usage: scripts/crash_smoke.sh [path/to/graphpim_sim]
set -u

SIM="${1:-build/tools/graphpim_sim}"
if [[ ! -x "$SIM" ]]; then
  echo "crash_smoke: $SIM not found or not executable" >&2
  echo "build first: cmake -B build && cmake --build build --target graphpim_sim" >&2
  exit 1
fi

WORK="$(mktemp -d "${TMPDIR:-/tmp}/graphpim_crash_smoke.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

ARGS=(--workload=gup --profile=ldbc --vertices=1024 --threads=8 --seed=1
      --pmem-enable=1)

echo "== seeded crash sweep (full discipline, 20 cycles)"
"$SIM" "${ARGS[@]}" --crash-sweep=20 --jobs=1 > "$WORK/full.j1.out" || {
  echo "crash_smoke: FAIL — crash-sweep run errored" >&2; exit 1; }
if ! grep -q "persist check: OK" "$WORK/full.j1.out"; then
  echo "crash_smoke: FAIL — full discipline did not pass the checker:" >&2
  grep "persist check" "$WORK/full.j1.out" >&2
  exit 1
fi
CYCLES="$(grep -c "crash @" "$WORK/full.j1.out")"
BAD="$(grep -c "ns: INCONSISTENT" "$WORK/full.j1.out")"
if [[ "$CYCLES" -lt 20 || "$BAD" -ne 0 ]]; then
  echo "crash_smoke: FAIL — expected >=20 all-consistent cycles, got" \
       "$CYCLES cycles with $BAD inconsistent-cycle rows" >&2
  exit 1
fi
echo "   $CYCLES crash/recovery cycles, all consistent"

echo "== jobs invariance (crash recovery table, jobs 1 vs 4)"
"$SIM" "${ARGS[@]}" --crash-sweep=20 --jobs=4 > "$WORK/full.j4.out" || {
  echo "crash_smoke: FAIL — jobs=4 crash-sweep run errored" >&2; exit 1; }
for j in 1 4; do
  sed -n '/^== crash recovery table ==$/,/^== end crash recovery table ==$/p' \
      "$WORK/full.j$j.out" > "$WORK/table.j$j"
done
if cmp -s "$WORK/table.j1" "$WORK/table.j4"; then
  echo "   recovery table: jobs-invariant"
else
  echo "crash_smoke: FAIL — crash recovery table differs across --jobs:" >&2
  diff "$WORK/table.j1" "$WORK/table.j4" | head -20 >&2
  exit 1
fi

echo "== seeded missing-fence mutant"
"$SIM" "${ARGS[@]}" --pmem-mutant=missing-fence > "$WORK/mutant.out" || {
  echo "crash_smoke: FAIL — mutant run errored" >&2; exit 1; }
if ! grep -q "persist check: VIOLATIONS" "$WORK/mutant.out" || \
   ! grep -q "unordered-publish" "$WORK/mutant.out"; then
  echo "crash_smoke: FAIL — checker missed the seeded missing-fence bug:" >&2
  grep "persist check" "$WORK/mutant.out" >&2
  exit 1
fi
echo "   checker flagged the seeded bug"

echo "crash_smoke: PASS"
