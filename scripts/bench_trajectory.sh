#!/usr/bin/env bash
# BENCH_0008 — the paired million-vertex trajectory point.
#
# Runs the Table-IV-scale paired simulation (baseline + GraphPIM on
# ldbc-1M) at --shards=1 and --shards=4, asserts the two outputs are
# byte-identical (the sharded engine's core contract), and emits one JSON
# record with the wall times, the shard speedup, and the tiled-trace
# footprint parsed from the report's "trace: peak" line.
#
# Usage: scripts/bench_trajectory.sh [sim-binary] [out-json]
#   sim-binary  defaults to build/tools/graphpim_sim
#   out-json    defaults to BENCH_0008.json
#
# Environment:
#   BENCH_VERTICES      vertex count           (default 1048576)
#   BENCH_OPCAP         per-thread op cap      (default 12000000)
#   BENCH_REPS          timed repetitions, min is kept (default 1)
#   BENCH_BASELINE_BIN  optional pre-refactor graphpim_sim; when set, the
#                       same scenario is timed on it and the record gains
#                       a speedup-vs-baseline entry (the serial engine has
#                       no --shards flag, so it runs with its defaults).
set -eu

SIM="${1:-build/tools/graphpim_sim}"
OUT="${2:-BENCH_0008.json}"
VERTICES="${BENCH_VERTICES:-1048576}"
OPCAP="${BENCH_OPCAP:-12000000}"
REPS="${BENCH_REPS:-1}"

FLAGS=(--workload=bfs --profile=ldbc "--vertices=$VERTICES"
       "--opcap=$OPCAP" --threads=16 --seed=1 --jobs=1
       --mode=baseline,graphpim)

WORK="$(mktemp -d "${TMPDIR:-/tmp}/graphpim_bench.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

# Wall-clock milliseconds around one run, via $EPOCHREALTIME (no external
# `bc`/`time` dependency). With BENCH_REPS > 1 the minimum is kept — the
# least-noise estimate on a shared host.
run_timed() {  # run_timed <out-file> <binary> [extra flags...]
  local out="$1"; shift
  local best="" t0 t1 ms
  for ((rep = 0; rep < REPS; ++rep)); do
    t0="$EPOCHREALTIME"
    "$@" > "$out" 2>/dev/null
    t1="$EPOCHREALTIME"
    ms="$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.0f", (b - a) * 1000 }')"
    if [[ -z "$best" ]] || ((ms < best)); then best="$ms"; fi
  done
  printf '%s' "$best"
}

echo "== bench_trajectory: bfs ldbc-$VERTICES paired (baseline+graphpim)"
ms_s1="$(run_timed "$WORK/s1.out" "$SIM" "${FLAGS[@]}" --shards=1)"
echo "   shards=1: ${ms_s1} ms"
ms_s4="$(run_timed "$WORK/s4.out" "$SIM" "${FLAGS[@]}" --shards=4)"
echo "   shards=4: ${ms_s4} ms"

# Identity gate: everything except the wall-clock chatter line must match.
identical=true
if ! cmp -s <(grep -v '^wall' "$WORK/s1.out") <(grep -v '^wall' "$WORK/s4.out"); then
  identical=false
  echo "bench_trajectory: FAIL — shards=4 output differs from shards=1:" >&2
  diff <(grep -v '^wall' "$WORK/s1.out") <(grep -v '^wall' "$WORK/s4.out") | head -20 >&2
fi

trace_bytes="$(grep -m1 '^trace: peak' "$WORK/s1.out" | awk '{print $3}')"
cycles="$(grep -m1 '^cycles:' "$WORK/s1.out" | awk '{print $2}')"

# Best configuration of this binary on this host: shards help on multi-core
# runners and cost thread contention on single-CPU ones.
best_ms="$ms_s1"; best_cfg="shards1"
if ((ms_s4 < ms_s1)); then best_ms="$ms_s4"; best_cfg="shards4"; fi

baseline_json=""
if [[ -n "${BENCH_BASELINE_BIN:-}" ]]; then
  echo "== reference binary: $BENCH_BASELINE_BIN"
  ms_ref="$(run_timed "$WORK/ref.out" "$BENCH_BASELINE_BIN" "${FLAGS[@]}")"
  echo "   reference: ${ms_ref} ms"
  baseline_json="$(awk -v r="$ms_ref" -v s="$best_ms" -v c="$best_cfg" 'BEGIN {
    printf ",\n  \"reference\": {\"wall_ms\": %s, \"speedup_vs_reference\": %.2f, \"best_config\": \"%s\"}", r, r / s, c }')"
fi

speedup="$(awk -v a="$ms_s1" -v b="$ms_s4" 'BEGIN { printf "%.2f", a / b }')"

cat > "$OUT" <<EOF
{
  "bench": "BENCH_0008",
  "scenario": "bfs ldbc paired baseline+graphpim",
  "vertices": $VERTICES,
  "opcap": $OPCAP,
  "host_cpus": $(nproc),
  "wall_ms": {"shards1": $ms_s1, "shards4": $ms_s4},
  "speedup_shards4_vs_shards1": $speedup,
  "shard_output_identical": $identical,
  "trace_peak_bytes": ${trace_bytes:-0},
  "cycles_shards1": ${cycles:-0}$baseline_json
}
EOF
echo "== wrote $OUT"
cat "$OUT"

[[ "$identical" == true ]]
