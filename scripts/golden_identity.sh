#!/usr/bin/env bash
# Golden byte-identity gate for the instrumentation substrate.
#
# Builds the PR branch AND its merge-base with main, runs both simulators
# on the pinned golden scenarios (the same flags tests/golden/ was captured
# with), and asserts the --json output and the deterministic report section
# are byte-identical. This catches counter-surface drift the unit goldens
# can't: it compares against the *actual base revision*, not a checked-in
# snapshot, so an accidental regeneration of tests/golden/ cannot mask a
# behavior change.
#
# Usage: scripts/golden_identity.sh [base-ref]   (default: origin/main,
#        falling back to main). Requires a full clone (fetch-depth: 0).
set -eu

BASE_REF="${1:-}"
if [[ -z "$BASE_REF" ]]; then
  if git rev-parse --verify -q origin/main >/dev/null; then
    BASE_REF=origin/main
  else
    BASE_REF=main
  fi
fi

REPO="$(git rev-parse --show-toplevel)"
cd "$REPO"
BASE_SHA="$(git merge-base HEAD "$BASE_REF")"
if [[ "$BASE_SHA" == "$(git rev-parse HEAD)" ]]; then
  echo "golden_identity: HEAD is the merge base ($BASE_SHA); nothing to compare"
  exit 0
fi

WORK="$(mktemp -d "${TMPDIR:-/tmp}/graphpim_golden.XXXXXX")"
trap 'rm -rf "$WORK" && git worktree prune' EXIT

echo "== building base $BASE_SHA"
git worktree add --detach "$WORK/base" "$BASE_SHA" >/dev/null
cmake -B "$WORK/base/build" -S "$WORK/base" >/dev/null
cmake --build "$WORK/base/build" -j "$(nproc)" --target graphpim_sim >/dev/null

echo "== building HEAD"
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" --target graphpim_sim >/dev/null

# Pinned scenarios: one plain baseline, one GraphPIM, one fault-injecting
# run (decorrelated RNG paths must survive the refactor too).
SCENARIOS=(
  "bfs_baseline|--workload=bfs --mode=baseline"
  "bfs_graphpim|--workload=bfs --mode=graphpim"
  "dc_graphpim_ber|--workload=dc --mode=graphpim --link-ber=1e-7"
)
COMMON=(--profile=ldbc --vertices=2048 --opcap=150000 --threads=8 --seed=1
        --jobs=1)

fail=0
for sc in "${SCENARIOS[@]}"; do
  name="${sc%%|*}"
  read -r -a flags <<< "${sc#*|}"
  for side in base head; do
    if [[ "$side" == base ]]; then
      sim="$WORK/base/build/tools/graphpim_sim"
    else
      sim="build/tools/graphpim_sim"
    fi
    "$sim" "${COMMON[@]}" "${flags[@]}" --json="$WORK/$name.$side.json" \
        > "$WORK/$name.$side.out"
    # The deterministic report section; driver chatter above/below carries
    # wall-clock noise.
    sed -n '/^config:/,/^uncore energy:/p' "$WORK/$name.$side.out" \
        > "$WORK/$name.$side.report"
  done
  for kind in json report; do
    if cmp -s "$WORK/$name.base.$kind" "$WORK/$name.head.$kind"; then
      echo "   $name.$kind: identical"
    else
      echo "golden_identity: FAIL — $name.$kind differs from $BASE_SHA:" >&2
      diff "$WORK/$name.base.$kind" "$WORK/$name.head.$kind" | head -20 >&2
      fail=1
    fi
  done
done

# HEAD-only gate: the multi-cube network does not exist at the merge base
# (the base binary rejects --num-cubes), so its identity check is jobs-count
# invariance instead of a base diff — a pinned-seed num_cubes=2 sweep must
# emit a bit-identical deterministic CSV at --jobs=1 and --jobs=4.
echo "== multi-cube determinism (num_cubes=2, jobs 1 vs 4)"
cmake --build build -j "$(nproc)" --target graphpim_sweep >/dev/null
for j in 1 4; do
  build/tools/graphpim_sweep --workloads=bfs,dc --modes=baseline,graphpim \
      --num-cubes=2 --vertices=2048 --opcap=150000 --seed=1 --jobs="$j" \
      --det-csv="$WORK/cubes2.j$j.csv" >/dev/null
done
if cmp -s "$WORK/cubes2.j1.csv" "$WORK/cubes2.j4.csv"; then
  echo "   cubes2.det-csv: jobs-invariant"
else
  echo "golden_identity: FAIL — num_cubes=2 sweep differs across --jobs:" >&2
  diff "$WORK/cubes2.j1.csv" "$WORK/cubes2.j4.csv" | head -20 >&2
  fail=1
fi

# HEAD-only gate: transaction tracing (DESIGN.md §12). The base binary
# rejects --trace-sample-rate, so this is not a base diff either. Two
# halves: (a) tracing off must be a true no-op — passing the flag
# explicitly at 0 must reproduce the flag-less HEAD outputs byte for byte;
# (b) a sampled run must produce artifacts scripts/validate_trace.py
# accepts, and journal span sidecars must be --jobs invariant.
echo "== tracing-off identity (--trace-sample-rate=0 vs no flag)"
for sc in "${SCENARIOS[@]}"; do
  name="${sc%%|*}"
  read -r -a flags <<< "${sc#*|}"
  build/tools/graphpim_sim "${COMMON[@]}" "${flags[@]}" \
      --trace-sample-rate=0 --json="$WORK/$name.off.json" \
      > "$WORK/$name.off.out"
  sed -n '/^config:/,/^uncore energy:/p' "$WORK/$name.off.out" \
      > "$WORK/$name.off.report"
  for kind in json report; do
    if cmp -s "$WORK/$name.head.$kind" "$WORK/$name.off.$kind"; then
      echo "   $name.$kind: identical with tracing off"
    else
      echo "golden_identity: FAIL — --trace-sample-rate=0 perturbs $name.$kind:" >&2
      diff "$WORK/$name.head.$kind" "$WORK/$name.off.$kind" | head -20 >&2
      fail=1
    fi
  done
done

# HEAD-only gate: the persistent PMR (DESIGN.md §14). Same structure as
# the tracing gate: (a) pmem.enable=0 must be a strict byte-identical
# passthrough — passing the flag explicitly at 0 reproduces the flag-less
# HEAD outputs exactly; (b) the crash recovery table of a seeded
# --crash-sweep must be bit-identical across --jobs and across reruns.
echo "== pmem-off identity (--pmem-enable=0 vs no flag)"
for sc in "${SCENARIOS[@]}"; do
  name="${sc%%|*}"
  read -r -a flags <<< "${sc#*|}"
  build/tools/graphpim_sim "${COMMON[@]}" "${flags[@]}" \
      --pmem-enable=0 --json="$WORK/$name.pmem0.json" \
      > "$WORK/$name.pmem0.out"
  sed -n '/^config:/,/^uncore energy:/p' "$WORK/$name.pmem0.out" \
      > "$WORK/$name.pmem0.report"
  for kind in json report; do
    if cmp -s "$WORK/$name.head.$kind" "$WORK/$name.pmem0.$kind"; then
      echo "   $name.$kind: identical with pmem off"
    else
      echo "golden_identity: FAIL — --pmem-enable=0 perturbs $name.$kind:" >&2
      diff "$WORK/$name.head.$kind" "$WORK/$name.pmem0.$kind" | head -20 >&2
      fail=1
    fi
  done
done

# HEAD-only gate: the intra-run sharded replay engine (DESIGN.md §15). The
# base binary rejects --shards, so the identity check is shard-count
# invariance: every pinned scenario must emit byte-identical --json and
# deterministic report output at --shards=4 and at the serial default.
echo "== shard invariance (--shards=4 vs serial HEAD)"
for sc in "${SCENARIOS[@]}"; do
  name="${sc%%|*}"
  read -r -a flags <<< "${sc#*|}"
  build/tools/graphpim_sim "${COMMON[@]}" "${flags[@]}" \
      --shards=4 --json="$WORK/$name.s4.json" \
      > "$WORK/$name.s4.out"
  sed -n '/^config:/,/^uncore energy:/p' "$WORK/$name.s4.out" \
      > "$WORK/$name.s4.report"
  for kind in json report; do
    if cmp -s "$WORK/$name.head.$kind" "$WORK/$name.s4.$kind"; then
      echo "   $name.$kind: shard-invariant"
    else
      echo "golden_identity: FAIL — --shards=4 perturbs $name.$kind:" >&2
      diff "$WORK/$name.head.$kind" "$WORK/$name.s4.$kind" | head -20 >&2
      fail=1
    fi
  done
done

echo "== crash-sweep determinism (gup, jobs 1 vs 4, rerun)"
for run in j1 j4 rerun; do
  j=1; [[ "$run" == j4 ]] && j=4
  build/tools/graphpim_sim --workload=gup --profile=ldbc --vertices=2048 \
      --threads=8 --seed=1 --pmem-enable=1 --crash-sweep=25 --jobs="$j" \
      > "$WORK/crash.$run.out"
  sed -n '/^== crash recovery table ==$/,/^== end crash recovery table ==$/p' \
      "$WORK/crash.$run.out" > "$WORK/crash.$run.table"
done
for pair in "j1 j4" "j1 rerun"; do
  read -r a b <<< "$pair"
  if cmp -s "$WORK/crash.$a.table" "$WORK/crash.$b.table"; then
    echo "   crash.table $a vs $b: identical"
  else
    echo "golden_identity: FAIL — crash recovery table $a vs $b differs:" >&2
    diff "$WORK/crash.$a.table" "$WORK/crash.$b.table" | head -20 >&2
    fail=1
  fi
done
if ! grep -q "persist check: OK" "$WORK/crash.j1.out"; then
  echo "golden_identity: FAIL — full persist discipline failed the checker" >&2
  fail=1
fi

echo "== tracing smoke (--trace-sample-rate=0.05)"
build/tools/graphpim_sim "${COMMON[@]}" --workload=bfs --mode=all \
    --trace-sample-rate=0.05 --metrics-out="$WORK/trace.json" \
    > "$WORK/trace.out"
# Rows carry wall_ms and land in completion order under --jobs=4, so the
# invariant is the *sorted sidecar lines*, not the whole journal.
for j in 1 4; do
  build/tools/graphpim_sweep --workloads=bfs --modes=baseline,graphpim \
      --vertices=2048 --opcap=150000 --seed=1 --jobs="$j" \
      --trace-sample-rate=0.05 --journal="$WORK/spans.j$j.jsonl" >/dev/null
  grep '^{"spans_for":' "$WORK/spans.j$j.jsonl" | sort \
      > "$WORK/spans.j$j.sidecars"
done
if cmp -s "$WORK/spans.j1.sidecars" "$WORK/spans.j4.sidecars"; then
  echo "   span sidecars: jobs-invariant"
else
  echo "golden_identity: FAIL — span sidecars differ across --jobs:" >&2
  diff "$WORK/spans.j1.sidecars" "$WORK/spans.j4.sidecars" | head -20 >&2
  fail=1
fi
if python3 scripts/validate_trace.py "$WORK/trace.json" "$WORK/spans.j1.jsonl"; then
  echo "   trace artifacts: valid"
else
  echo "golden_identity: FAIL — trace artifacts rejected by validate_trace.py" >&2
  fail=1
fi

# HEAD-only gate: the query-serving engine (DESIGN.md §13) does not exist
# at the merge base, so its identity checks are (a) jobs-count invariance
# and (b) rerun byte-identity of the deterministic region between the
# "== saturation table ==" markers. The base-diff scenarios above already
# prove the batch tools' output is untouched with the serve subsystem
# compiled in; this adds the serve tool's own determinism contract.
echo "== serve determinism (saturation table: jobs 1 vs 4, rerun)"
cmake --build build -j "$(nproc)" --target graphpim_serve >/dev/null
# Telemetry windows + an SLO target ride along so the per-window table
# printed inside the markers (and its burn-rate column) inherits the same
# jobs/rerun identity contract as the saturation table itself.
SERVE_FLAGS=(--profile=ldbc --vertices=2048 --requests=48 --tenants=2
             --modes=baseline,graphpim --num-cubes=1,2 --qps-grid=2e5,1e6,5e6
             --queue-depth=16 --seed=1 --telemetry-window-ns=50000
             --slo-ns=200000)
for run in j1 j4 rerun; do
  j=1; [[ "$run" == j4 ]] && j=4
  extra=()
  [[ "$run" == j1 ]] && extra=(--metrics-out="$WORK/serve.trace.json")
  build/tools/graphpim_serve "${SERVE_FLAGS[@]}" --jobs="$j" "${extra[@]}" \
      > "$WORK/serve.$run.out"
  sed -n '/^== saturation table ==$/,/^== end saturation table ==$/p' \
      "$WORK/serve.$run.out" > "$WORK/serve.$run.table"
done
for pair in "j1 j4" "j1 rerun"; do
  read -r a b <<< "$pair"
  if cmp -s "$WORK/serve.$a.table" "$WORK/serve.$b.table"; then
    echo "   serve.table $a vs $b: identical"
  else
    echo "golden_identity: FAIL — serve saturation table $a vs $b differs:" >&2
    diff "$WORK/serve.$a.table" "$WORK/serve.$b.table" | head -20 >&2
    fail=1
  fi
done
if python3 scripts/validate_trace.py "$WORK/serve.trace.json"; then
  echo "   serve trace artifact: valid"
else
  echo "golden_identity: FAIL — serve --metrics-out rejected by validate_trace.py" >&2
  fail=1
fi

# HEAD-only gate: telemetry timelines (DESIGN.md §17). The base binary
# rejects --telemetry-window-ns, so two halves again: (a) telemetry off is
# the default and passing the knob explicitly at 0 must reproduce the
# flag-less HEAD outputs byte for byte on every pinned scenario; (b) a
# windowed run's timeline must be bit-identical across --shards, across
# reruns, and across --jobs for the sweep journal sidecars, and every
# artifact must clear scripts/validate_trace.py.
echo "== telemetry-off identity (--telemetry-window-ns=0 vs no flag)"
for sc in "${SCENARIOS[@]}"; do
  name="${sc%%|*}"
  read -r -a flags <<< "${sc#*|}"
  build/tools/graphpim_sim "${COMMON[@]}" "${flags[@]}" \
      --telemetry-window-ns=0 --json="$WORK/$name.tele0.json" \
      > "$WORK/$name.tele0.out"
  sed -n '/^config:/,/^uncore energy:/p' "$WORK/$name.tele0.out" \
      > "$WORK/$name.tele0.report"
  for kind in json report; do
    if cmp -s "$WORK/$name.head.$kind" "$WORK/$name.tele0.$kind"; then
      echo "   $name.$kind: identical with telemetry off"
    else
      echo "golden_identity: FAIL — --telemetry-window-ns=0 perturbs $name.$kind:" >&2
      diff "$WORK/$name.head.$kind" "$WORK/$name.tele0.$kind" | head -20 >&2
      fail=1
    fi
  done
done

echo "== timeline determinism (shards 1 vs 4, rerun, sweep jobs 1 vs 4)"
for run in s1 s4 rerun; do
  s=1; [[ "$run" == s4 ]] && s=4
  build/tools/graphpim_sim "${COMMON[@]}" --workload=bfs --mode=graphpim \
      --shards="$s" --telemetry-window-ns=5000 \
      --timeline-out="$WORK/tl.$run.jsonl" \
      --metrics-out="$WORK/tl.$run.metrics.json" >/dev/null
done
for pair in "s1 s4" "s1 rerun"; do
  read -r a b <<< "$pair"
  if cmp -s "$WORK/tl.$a.jsonl" "$WORK/tl.$b.jsonl"; then
    echo "   timeline $a vs $b: identical"
  else
    echo "golden_identity: FAIL — timeline $a vs $b differs:" >&2
    diff "$WORK/tl.$a.jsonl" "$WORK/tl.$b.jsonl" | head -20 >&2
    fail=1
  fi
done
# Sweep rows retire in completion order under --jobs=4, so (as with span
# sidecars) the invariant is the sorted timeline sidecar lines.
for j in 1 4; do
  build/tools/graphpim_sweep --workloads=bfs --modes=baseline,graphpim \
      --vertices=2048 --opcap=150000 --seed=1 --jobs="$j" \
      --telemetry-window-ns=5000 --journal="$WORK/tl.j$j.jsonl" >/dev/null
  grep '^{"timeline_for":' "$WORK/tl.j$j.jsonl" | sort \
      > "$WORK/tl.j$j.sidecars"
done
if cmp -s "$WORK/tl.j1.sidecars" "$WORK/tl.j4.sidecars"; then
  echo "   timeline sidecars: jobs-invariant"
else
  echo "golden_identity: FAIL — timeline sidecars differ across --jobs:" >&2
  diff "$WORK/tl.j1.sidecars" "$WORK/tl.j4.sidecars" | head -20 >&2
  fail=1
fi
if python3 scripts/validate_trace.py "$WORK/tl.s1.jsonl" \
    "$WORK/tl.s1.metrics.json" "$WORK/tl.j1.jsonl"; then
  echo "   timeline artifacts: valid"
else
  echo "golden_identity: FAIL — timeline artifacts rejected by validate_trace.py" >&2
  fail=1
fi
# CI sets TELEMETRY_OUT_DIR to keep the timelines as build artifacts; the
# work dir itself is wiped by the trap.
if [[ -n "${TELEMETRY_OUT_DIR:-}" ]]; then
  mkdir -p "$TELEMETRY_OUT_DIR"
  cp "$WORK/tl.s1.jsonl" "$WORK/tl.s1.metrics.json" "$WORK/tl.j1.jsonl" \
     "$TELEMETRY_OUT_DIR/"
fi

# The regression sentinel itself: identical inputs must pass, an injected
# counter drift must trip the non-zero exit CI keys on.
echo "== graphpim_compare sentinel (self-compare passes, drift fails)"
cmake --build build -j "$(nproc)" --target graphpim_compare >/dev/null
if build/tools/graphpim_compare "$WORK/tl.s1.jsonl" "$WORK/tl.rerun.jsonl" \
    --tolerance=0 >/dev/null; then
  echo "   self-compare: exit 0"
else
  echo "golden_identity: FAIL — compare of identical timelines reported drift" >&2
  fail=1
fi
python3 - "$WORK/tl.s1.jsonl" "$WORK/tl.drift.jsonl" <<'EOF'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1])]
key = next(iter(lines[0]["deltas"]))
lines[0]["deltas"][key] = lines[0]["deltas"][key] * 1.5 + 7
open(sys.argv[2], "w").write("\n".join(json.dumps(l) for l in lines) + "\n")
EOF
if build/tools/graphpim_compare "$WORK/tl.s1.jsonl" "$WORK/tl.drift.jsonl" \
    --tolerance=0.02 >/dev/null; then
  echo "golden_identity: FAIL — compare missed an injected counter drift" >&2
  fail=1
else
  echo "   injected drift: exit non-zero"
fi

# HEAD-only gate: the ann.* knobs (DESIGN.md §16). The defaults ARE the
# "knob not given" state — only the hnsw workload and the knn query kind
# read them — so passing every ann flag explicitly at its default must
# reproduce the flag-less HEAD outputs byte for byte on every pinned
# scenario (strict passthrough; same structure as the tracing/pmem gates).
echo "== ann-off identity (explicit default ann.* flags vs no flags)"
ANN_DEFAULTS=(--ann-dim=16 --ann-m=8 --ann-ef-search=32 --ann-k=8
              --ann-queries=16)
for sc in "${SCENARIOS[@]}"; do
  name="${sc%%|*}"
  read -r -a flags <<< "${sc#*|}"
  build/tools/graphpim_sim "${COMMON[@]}" "${flags[@]}" \
      "${ANN_DEFAULTS[@]}" --json="$WORK/$name.ann0.json" \
      > "$WORK/$name.ann0.out"
  sed -n '/^config:/,/^uncore energy:/p' "$WORK/$name.ann0.out" \
      > "$WORK/$name.ann0.report"
  for kind in json report; do
    if cmp -s "$WORK/$name.head.$kind" "$WORK/$name.ann0.$kind"; then
      echo "   $name.$kind: identical with default ann flags"
    else
      echo "golden_identity: FAIL — default ann.* flags perturb $name.$kind:" >&2
      diff "$WORK/$name.head.$kind" "$WORK/$name.ann0.$kind" | head -20 >&2
      fail=1
    fi
  done
done

# HEAD-only gate: k-NN serving over the shared HNSW index (DESIGN.md §16).
# A pure knn mix exercises the emitter registry's new kind end-to-end; its
# saturation table must be jobs- and rerun-invariant like the default mix,
# and the recall self-check printed inside the markers must clear the
# quality bar (>= 0.9 vs brute force).
echo "== knn serve determinism (--mix=knn=1: jobs 1 vs 4, rerun)"
KNN_FLAGS=(--profile=ldbc --vertices=2048 --requests=48 --tenants=2
           --modes=baseline,graphpim --qps-grid=2e5,1e6,5e6
           --queue-depth=16 --seed=1 --mix=knn=1)
for run in j1 j4 rerun; do
  j=1; [[ "$run" == j4 ]] && j=4
  build/tools/graphpim_serve "${KNN_FLAGS[@]}" --jobs="$j" \
      > "$WORK/knn.$run.out"
  sed -n '/^== saturation table ==$/,/^== end saturation table ==$/p' \
      "$WORK/knn.$run.out" > "$WORK/knn.$run.table"
done
for pair in "j1 j4" "j1 rerun"; do
  read -r a b <<< "$pair"
  if cmp -s "$WORK/knn.$a.table" "$WORK/knn.$b.table"; then
    echo "   knn.table $a vs $b: identical"
  else
    echo "golden_identity: FAIL — knn saturation table $a vs $b differs:" >&2
    diff "$WORK/knn.$a.table" "$WORK/knn.$b.table" | head -20 >&2
    fail=1
  fi
done
recall_line="$(grep '^ann self-check:' "$WORK/knn.j1.table" || true)"
if [[ -z "$recall_line" ]]; then
  echo "golden_identity: FAIL — knn serve printed no ann self-check line" >&2
  fail=1
elif ! echo "$recall_line" | \
    awk -F'recall@[0-9]+=' '{exit !($2 + 0 >= 0.9)}'; then
  echo "golden_identity: FAIL — knn recall below 0.9: $recall_line" >&2
  fail=1
else
  echo "   $recall_line (>= 0.9)"
fi

if [[ "$fail" -ne 0 ]]; then
  exit 1
fi
echo "golden_identity: PASS — all scenarios byte-identical to $BASE_SHA"
