#!/usr/bin/env bash
# Kill-and-resume smoke test for the crash-safe sweep journal.
#
# Starts a journaled sweep, SIGKILLs it mid-run (no chance to flush or
# clean up), resumes from the journal, and asserts the resumed run's
# deterministic CSV is byte-identical to an uninterrupted run's. Exercises
# the full robustness path end to end: append-only JSONL journaling,
# torn-line tolerance, fingerprint checking, and deterministic re-execution
# of the missing rows.
#
# Usage: scripts/resume_smoke.sh [path/to/graphpim_sweep]
set -u

SWEEP="${1:-build/tools/graphpim_sweep}"
if [[ ! -x "$SWEEP" ]]; then
  echo "resume_smoke: $SWEEP not found or not executable" >&2
  echo "build first: cmake -B build && cmake --build build --target graphpim_sweep" >&2
  exit 1
fi

WORK="$(mktemp -d "${TMPDIR:-/tmp}/graphpim_resume_smoke.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

# A grid big enough that a mid-run kill lands between rows, small enough to
# finish in seconds. Fault knobs on, so injection state must survive too.
ARGS=(--workloads=bfs,prank --modes=baseline,graphpim --vertices=8192
      --opcap=400000 --jobs=2 --progress=0
      --link-ber=1e-7 --vault-stall-ppm=200)

echo "== reference run (uninterrupted)"
"$SWEEP" "${ARGS[@]}" --det-csv="$WORK/ref.csv" >/dev/null || {
  echo "resume_smoke: FAIL — reference run errored" >&2; exit 1; }

echo "== victim run (SIGKILL mid-sweep)"
"$SWEEP" "${ARGS[@]}" --journal="$WORK/rows.jsonl" >/dev/null &
VICTIM=$!
# Wait for the journal to hold at least one completed row, then kill -9.
for _ in $(seq 1 200); do
  LINES=0
  [[ -f "$WORK/rows.jsonl" ]] && LINES="$(wc -l <"$WORK/rows.jsonl")"
  [[ "$LINES" -ge 2 ]] && break
  kill -0 "$VICTIM" 2>/dev/null || break
  sleep 0.05
done
kill -KILL "$VICTIM" 2>/dev/null
wait "$VICTIM" 2>/dev/null
STATUS=$?
if [[ "$STATUS" -ne 137 ]]; then
  # The sweep finished before we could kill it; resume still must work
  # (all rows restore, none re-simulate), so carry on.
  echo "   (victim finished before the kill landed: exit $STATUS)"
fi

echo "== resumed run"
"$SWEEP" "${ARGS[@]}" --journal="$WORK/rows.jsonl" --resume=1 \
    --det-csv="$WORK/resumed.csv" | grep -E "resumed|FAILED" || true

if cmp -s "$WORK/ref.csv" "$WORK/resumed.csv"; then
  echo "resume_smoke: PASS — resumed sweep is bit-identical to the reference"
else
  echo "resume_smoke: FAIL — resumed CSV differs from the reference:" >&2
  diff "$WORK/ref.csv" "$WORK/resumed.csv" >&2 | head -20
  exit 1
fi
