#!/usr/bin/env python3
"""Strict validator for the simulator's trace artifacts.

Accepts any mix of:
  * Chrome-trace files (graphpim_sim --metrics-out=x.json): must parse as
    strict JSON with a traceEvents list; every event needs name/ph/pid, X
    events need ts and a non-negative dur, C (counter) events need a
    non-negative ts, a numeric args dict, and non-rewinding timestamps per
    (pid, name) track.
  * JSONL files (--metrics-out=x.jsonl, --timeline-out, or a sweep
    --journal): every line must parse as strict JSON; phase lines need
    start_ns <= end_ns; span lines/objects need known stage names and
    enter_ns <= exit_ns; telemetry window lines (and journal
    {"timeline_for":...} sidecars) need contiguous indices per point and
    monotonic, non-overlapping window timestamps.

Exits 0 when every file validates, 1 with a diagnostic otherwise. Stdlib
only — runs anywhere CI has python3.

Usage: scripts/validate_trace.py FILE [FILE...]
"""

import json
import sys

STAGES = {
    "issue", "cache", "pou", "hop", "cube_link",
    "vault_queue", "bank", "fu", "response",
}


def fail(path, msg):
    print(f"validate_trace: {path}: {msg}", file=sys.stderr)
    return False


def check_span(path, span):
    for key in ("id", "core", "kind", "begin_ns", "end_ns", "stages"):
        if key not in span:
            return fail(path, f"span missing key '{key}': {span}")
    if span["kind"] not in ("R", "W", "A"):
        return fail(path, f"span has unknown kind '{span['kind']}'")
    if span["begin_ns"] > span["end_ns"]:
        return fail(path, f"span {span['id']} ends before it begins")
    for st in span["stages"]:
        if st.get("s") not in STAGES:
            return fail(path, f"span {span['id']} has unknown stage '{st.get('s')}'")
        if st["enter_ns"] > st["exit_ns"]:
            return fail(path, f"span {span['id']} stage {st['s']} exits before entry")
        if st["enter_ns"] < span["begin_ns"] - 1e-6:
            return fail(path, f"span {span['id']} stage {st['s']} precedes the span")
    return True


def check_chrome(path, doc):
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail(path, "no traceEvents list")
    counter_ts = {}  # (pid, name) -> last ts; counter tracks must not rewind
    for ev in events:
        for key in ("name", "ph", "pid"):
            if key not in ev:
                return fail(path, f"event missing key '{key}': {ev}")
        if ev["ph"] == "X":
            if "ts" not in ev or "dur" not in ev:
                return fail(path, f"X event missing ts/dur: {ev}")
            if ev["dur"] < 0:
                return fail(path, f"X event has negative dur: {ev}")
        elif ev["ph"] == "C":
            if "ts" not in ev or ev["ts"] < 0:
                return fail(path, f"C event missing ts or ts < 0: {ev}")
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                return fail(path, f"C event needs a non-empty args dict: {ev}")
            for k, v in args.items():
                if not isinstance(v, (int, float)) or isinstance(v, bool):
                    return fail(path,
                                f"C event arg '{k}' is not numeric: {ev}")
            track = (ev["pid"], ev["name"])
            if track in counter_ts and ev["ts"] < counter_ts[track]:
                return fail(path,
                            f"C track {track} timestamps rewind at {ev['ts']}")
            counter_ts[track] = ev["ts"]
    print(f"validate_trace: {path}: OK ({len(events)} events)")
    return True


def check_window(path, i, obj, last_window):
    """One telemetry timeline line; last_window maps point -> (index, end)."""
    for key in ("window", "start_ns", "end_ns", "deltas", "gauges"):
        if key not in obj:
            return fail(path, f"line {i}: window line missing key '{key}'")
    if obj["start_ns"] > obj["end_ns"]:
        return fail(path, f"line {i}: window ends before it starts")
    for field in ("deltas", "gauges"):
        if not isinstance(obj[field], dict):
            return fail(path, f"line {i}: window '{field}' is not an object")
        for k, v in obj[field].items():
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                return fail(path,
                            f"line {i}: window {field}['{k}'] is not numeric")
    point = obj.get("point", "")
    prev = last_window.get(point)
    if prev is not None:
        prev_index, prev_end = prev
        if obj["window"] != prev_index + 1:
            return fail(path, f"line {i}: window index {obj['window']} breaks "
                              f"sequence (previous {prev_index})")
        if obj["start_ns"] < prev_end:
            return fail(path, f"line {i}: window timestamps not monotonic "
                              f"(start {obj['start_ns']} < previous end "
                              f"{prev_end})")
    elif obj["window"] != 0:
        return fail(path, f"line {i}: first window of a point must have "
                          f"index 0, got {obj['window']}")
    last_window[point] = (obj["window"], obj["end_ns"])
    return True


def check_jsonl(path, lines):
    phases = spans = windows = rows = 0
    last_window = {}  # point -> (index, end_ns) across the file
    for i, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            return fail(path, f"line {i} is not strict JSON: {e}")
        if "phase" in obj:
            phases += 1
            if obj["start_ns"] > obj["end_ns"]:
                return fail(path, f"line {i}: phase ends before it starts")
        elif "spans_for" in obj or "stages" in obj:
            group = obj.get("spans", [obj] if "stages" in obj else [])
            for span in group:
                spans += 1
                if not check_span(path, span):
                    return False
        elif "window" in obj:
            windows += 1
            if not check_window(path, i, obj, last_window):
                return False
        elif "timeline_for" in obj:
            # Journal sidecar: the embedded windows validate like timeline
            # lines, scoped to this sidecar's coordinates.
            sidecar_last = {}
            for w in obj.get("windows", []):
                windows += 1
                if not check_window(path, i, w, sidecar_last):
                    return False
        else:
            rows += 1  # journal header / result rows / phase sidecars
    print(f"validate_trace: {path}: OK "
          f"({phases} phases, {spans} spans, {windows} windows, "
          f"{rows} other lines)")
    return True


def check_file(path):
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    stripped = text.lstrip()
    if not stripped:
        return fail(path, "empty file")
    # A Chrome trace is one JSON document; everything else we emit is JSONL.
    try:
        doc = json.loads(text)
        if isinstance(doc, dict) and "traceEvents" in doc:
            return check_chrome(path, doc)
    except json.JSONDecodeError:
        pass
    return check_jsonl(path, text.splitlines())


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 1
    ok = True
    for path in argv[1:]:
        ok = check_file(path) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
