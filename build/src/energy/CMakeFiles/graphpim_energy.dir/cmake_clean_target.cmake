file(REMOVE_RECURSE
  "libgraphpim_energy.a"
)
