file(REMOVE_RECURSE
  "CMakeFiles/graphpim_energy.dir/energy.cc.o"
  "CMakeFiles/graphpim_energy.dir/energy.cc.o.d"
  "libgraphpim_energy.a"
  "libgraphpim_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphpim_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
