# Empty dependencies file for graphpim_energy.
# This may be replaced when dependencies are built.
