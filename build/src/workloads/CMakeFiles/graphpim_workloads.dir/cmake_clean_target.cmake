file(REMOVE_RECURSE
  "libgraphpim_workloads.a"
)
