file(REMOVE_RECURSE
  "CMakeFiles/graphpim_workloads.dir/bc.cc.o"
  "CMakeFiles/graphpim_workloads.dir/bc.cc.o.d"
  "CMakeFiles/graphpim_workloads.dir/bfs.cc.o"
  "CMakeFiles/graphpim_workloads.dir/bfs.cc.o.d"
  "CMakeFiles/graphpim_workloads.dir/ccomp.cc.o"
  "CMakeFiles/graphpim_workloads.dir/ccomp.cc.o.d"
  "CMakeFiles/graphpim_workloads.dir/dc.cc.o"
  "CMakeFiles/graphpim_workloads.dir/dc.cc.o.d"
  "CMakeFiles/graphpim_workloads.dir/dfs.cc.o"
  "CMakeFiles/graphpim_workloads.dir/dfs.cc.o.d"
  "CMakeFiles/graphpim_workloads.dir/dynamic.cc.o"
  "CMakeFiles/graphpim_workloads.dir/dynamic.cc.o.d"
  "CMakeFiles/graphpim_workloads.dir/fusion.cc.o"
  "CMakeFiles/graphpim_workloads.dir/fusion.cc.o.d"
  "CMakeFiles/graphpim_workloads.dir/gibbs.cc.o"
  "CMakeFiles/graphpim_workloads.dir/gibbs.cc.o.d"
  "CMakeFiles/graphpim_workloads.dir/kcore.cc.o"
  "CMakeFiles/graphpim_workloads.dir/kcore.cc.o.d"
  "CMakeFiles/graphpim_workloads.dir/prank.cc.o"
  "CMakeFiles/graphpim_workloads.dir/prank.cc.o.d"
  "CMakeFiles/graphpim_workloads.dir/sssp.cc.o"
  "CMakeFiles/graphpim_workloads.dir/sssp.cc.o.d"
  "CMakeFiles/graphpim_workloads.dir/tc.cc.o"
  "CMakeFiles/graphpim_workloads.dir/tc.cc.o.d"
  "CMakeFiles/graphpim_workloads.dir/trace.cc.o"
  "CMakeFiles/graphpim_workloads.dir/trace.cc.o.d"
  "CMakeFiles/graphpim_workloads.dir/trace_io.cc.o"
  "CMakeFiles/graphpim_workloads.dir/trace_io.cc.o.d"
  "CMakeFiles/graphpim_workloads.dir/workload.cc.o"
  "CMakeFiles/graphpim_workloads.dir/workload.cc.o.d"
  "libgraphpim_workloads.a"
  "libgraphpim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphpim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
