# Empty compiler generated dependencies file for graphpim_workloads.
# This may be replaced when dependencies are built.
