
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/bc.cc" "src/workloads/CMakeFiles/graphpim_workloads.dir/bc.cc.o" "gcc" "src/workloads/CMakeFiles/graphpim_workloads.dir/bc.cc.o.d"
  "/root/repo/src/workloads/bfs.cc" "src/workloads/CMakeFiles/graphpim_workloads.dir/bfs.cc.o" "gcc" "src/workloads/CMakeFiles/graphpim_workloads.dir/bfs.cc.o.d"
  "/root/repo/src/workloads/ccomp.cc" "src/workloads/CMakeFiles/graphpim_workloads.dir/ccomp.cc.o" "gcc" "src/workloads/CMakeFiles/graphpim_workloads.dir/ccomp.cc.o.d"
  "/root/repo/src/workloads/dc.cc" "src/workloads/CMakeFiles/graphpim_workloads.dir/dc.cc.o" "gcc" "src/workloads/CMakeFiles/graphpim_workloads.dir/dc.cc.o.d"
  "/root/repo/src/workloads/dfs.cc" "src/workloads/CMakeFiles/graphpim_workloads.dir/dfs.cc.o" "gcc" "src/workloads/CMakeFiles/graphpim_workloads.dir/dfs.cc.o.d"
  "/root/repo/src/workloads/dynamic.cc" "src/workloads/CMakeFiles/graphpim_workloads.dir/dynamic.cc.o" "gcc" "src/workloads/CMakeFiles/graphpim_workloads.dir/dynamic.cc.o.d"
  "/root/repo/src/workloads/fusion.cc" "src/workloads/CMakeFiles/graphpim_workloads.dir/fusion.cc.o" "gcc" "src/workloads/CMakeFiles/graphpim_workloads.dir/fusion.cc.o.d"
  "/root/repo/src/workloads/gibbs.cc" "src/workloads/CMakeFiles/graphpim_workloads.dir/gibbs.cc.o" "gcc" "src/workloads/CMakeFiles/graphpim_workloads.dir/gibbs.cc.o.d"
  "/root/repo/src/workloads/kcore.cc" "src/workloads/CMakeFiles/graphpim_workloads.dir/kcore.cc.o" "gcc" "src/workloads/CMakeFiles/graphpim_workloads.dir/kcore.cc.o.d"
  "/root/repo/src/workloads/prank.cc" "src/workloads/CMakeFiles/graphpim_workloads.dir/prank.cc.o" "gcc" "src/workloads/CMakeFiles/graphpim_workloads.dir/prank.cc.o.d"
  "/root/repo/src/workloads/sssp.cc" "src/workloads/CMakeFiles/graphpim_workloads.dir/sssp.cc.o" "gcc" "src/workloads/CMakeFiles/graphpim_workloads.dir/sssp.cc.o.d"
  "/root/repo/src/workloads/tc.cc" "src/workloads/CMakeFiles/graphpim_workloads.dir/tc.cc.o" "gcc" "src/workloads/CMakeFiles/graphpim_workloads.dir/tc.cc.o.d"
  "/root/repo/src/workloads/trace.cc" "src/workloads/CMakeFiles/graphpim_workloads.dir/trace.cc.o" "gcc" "src/workloads/CMakeFiles/graphpim_workloads.dir/trace.cc.o.d"
  "/root/repo/src/workloads/trace_io.cc" "src/workloads/CMakeFiles/graphpim_workloads.dir/trace_io.cc.o" "gcc" "src/workloads/CMakeFiles/graphpim_workloads.dir/trace_io.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/graphpim_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/graphpim_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/graphpim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/graphpim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/graphpim_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/hmc/CMakeFiles/graphpim_hmc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
