file(REMOVE_RECURSE
  "CMakeFiles/graphpim_core.dir/report.cc.o"
  "CMakeFiles/graphpim_core.dir/report.cc.o.d"
  "CMakeFiles/graphpim_core.dir/runner.cc.o"
  "CMakeFiles/graphpim_core.dir/runner.cc.o.d"
  "CMakeFiles/graphpim_core.dir/sim_config.cc.o"
  "CMakeFiles/graphpim_core.dir/sim_config.cc.o.d"
  "CMakeFiles/graphpim_core.dir/system.cc.o"
  "CMakeFiles/graphpim_core.dir/system.cc.o.d"
  "libgraphpim_core.a"
  "libgraphpim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphpim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
