file(REMOVE_RECURSE
  "libgraphpim_core.a"
)
