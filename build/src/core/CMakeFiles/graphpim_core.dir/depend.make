# Empty dependencies file for graphpim_core.
# This may be replaced when dependencies are built.
