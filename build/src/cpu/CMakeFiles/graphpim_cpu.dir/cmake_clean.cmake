file(REMOVE_RECURSE
  "CMakeFiles/graphpim_cpu.dir/core.cc.o"
  "CMakeFiles/graphpim_cpu.dir/core.cc.o.d"
  "libgraphpim_cpu.a"
  "libgraphpim_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphpim_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
