# Empty compiler generated dependencies file for graphpim_cpu.
# This may be replaced when dependencies are built.
