file(REMOVE_RECURSE
  "libgraphpim_cpu.a"
)
