
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hmc/atomic.cc" "src/hmc/CMakeFiles/graphpim_hmc.dir/atomic.cc.o" "gcc" "src/hmc/CMakeFiles/graphpim_hmc.dir/atomic.cc.o.d"
  "/root/repo/src/hmc/cube.cc" "src/hmc/CMakeFiles/graphpim_hmc.dir/cube.cc.o" "gcc" "src/hmc/CMakeFiles/graphpim_hmc.dir/cube.cc.o.d"
  "/root/repo/src/hmc/flit.cc" "src/hmc/CMakeFiles/graphpim_hmc.dir/flit.cc.o" "gcc" "src/hmc/CMakeFiles/graphpim_hmc.dir/flit.cc.o.d"
  "/root/repo/src/hmc/vault.cc" "src/hmc/CMakeFiles/graphpim_hmc.dir/vault.cc.o" "gcc" "src/hmc/CMakeFiles/graphpim_hmc.dir/vault.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/graphpim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
