file(REMOVE_RECURSE
  "CMakeFiles/graphpim_hmc.dir/atomic.cc.o"
  "CMakeFiles/graphpim_hmc.dir/atomic.cc.o.d"
  "CMakeFiles/graphpim_hmc.dir/cube.cc.o"
  "CMakeFiles/graphpim_hmc.dir/cube.cc.o.d"
  "CMakeFiles/graphpim_hmc.dir/flit.cc.o"
  "CMakeFiles/graphpim_hmc.dir/flit.cc.o.d"
  "CMakeFiles/graphpim_hmc.dir/vault.cc.o"
  "CMakeFiles/graphpim_hmc.dir/vault.cc.o.d"
  "libgraphpim_hmc.a"
  "libgraphpim_hmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphpim_hmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
