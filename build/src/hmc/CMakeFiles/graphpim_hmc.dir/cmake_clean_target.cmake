file(REMOVE_RECURSE
  "libgraphpim_hmc.a"
)
