# Empty dependencies file for graphpim_hmc.
# This may be replaced when dependencies are built.
