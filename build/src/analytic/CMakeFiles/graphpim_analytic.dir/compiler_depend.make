# Empty compiler generated dependencies file for graphpim_analytic.
# This may be replaced when dependencies are built.
