file(REMOVE_RECURSE
  "CMakeFiles/graphpim_analytic.dir/model.cc.o"
  "CMakeFiles/graphpim_analytic.dir/model.cc.o.d"
  "libgraphpim_analytic.a"
  "libgraphpim_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphpim_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
