file(REMOVE_RECURSE
  "libgraphpim_analytic.a"
)
