file(REMOVE_RECURSE
  "libgraphpim_mem.a"
)
