file(REMOVE_RECURSE
  "CMakeFiles/graphpim_mem.dir/cache.cc.o"
  "CMakeFiles/graphpim_mem.dir/cache.cc.o.d"
  "CMakeFiles/graphpim_mem.dir/hierarchy.cc.o"
  "CMakeFiles/graphpim_mem.dir/hierarchy.cc.o.d"
  "libgraphpim_mem.a"
  "libgraphpim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphpim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
