# Empty compiler generated dependencies file for graphpim_mem.
# This may be replaced when dependencies are built.
