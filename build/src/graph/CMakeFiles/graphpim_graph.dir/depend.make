# Empty dependencies file for graphpim_graph.
# This may be replaced when dependencies are built.
