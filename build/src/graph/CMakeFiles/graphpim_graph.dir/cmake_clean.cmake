file(REMOVE_RECURSE
  "CMakeFiles/graphpim_graph.dir/csr.cc.o"
  "CMakeFiles/graphpim_graph.dir/csr.cc.o.d"
  "CMakeFiles/graphpim_graph.dir/edge_list.cc.o"
  "CMakeFiles/graphpim_graph.dir/edge_list.cc.o.d"
  "CMakeFiles/graphpim_graph.dir/generator.cc.o"
  "CMakeFiles/graphpim_graph.dir/generator.cc.o.d"
  "libgraphpim_graph.a"
  "libgraphpim_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphpim_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
