file(REMOVE_RECURSE
  "libgraphpim_graph.a"
)
