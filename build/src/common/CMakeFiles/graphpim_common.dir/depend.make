# Empty dependencies file for graphpim_common.
# This may be replaced when dependencies are built.
