file(REMOVE_RECURSE
  "CMakeFiles/graphpim_common.dir/config.cc.o"
  "CMakeFiles/graphpim_common.dir/config.cc.o.d"
  "CMakeFiles/graphpim_common.dir/log.cc.o"
  "CMakeFiles/graphpim_common.dir/log.cc.o.d"
  "CMakeFiles/graphpim_common.dir/string_util.cc.o"
  "CMakeFiles/graphpim_common.dir/string_util.cc.o.d"
  "CMakeFiles/graphpim_common.dir/types.cc.o"
  "CMakeFiles/graphpim_common.dir/types.cc.o.d"
  "libgraphpim_common.a"
  "libgraphpim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphpim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
