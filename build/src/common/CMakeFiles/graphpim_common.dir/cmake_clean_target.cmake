file(REMOVE_RECURSE
  "libgraphpim_common.a"
)
