# Empty compiler generated dependencies file for graphpim_sim.
# This may be replaced when dependencies are built.
