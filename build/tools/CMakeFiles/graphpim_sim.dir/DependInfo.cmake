
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/graphpim_sim.cc" "tools/CMakeFiles/graphpim_sim.dir/graphpim_sim.cc.o" "gcc" "tools/CMakeFiles/graphpim_sim.dir/graphpim_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/graphpim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/graphpim_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/graphpim_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/graphpim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/graphpim_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/graphpim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/graphpim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/hmc/CMakeFiles/graphpim_hmc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/graphpim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
