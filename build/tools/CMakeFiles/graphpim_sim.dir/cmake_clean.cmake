file(REMOVE_RECURSE
  "CMakeFiles/graphpim_sim.dir/graphpim_sim.cc.o"
  "CMakeFiles/graphpim_sim.dir/graphpim_sim.cc.o.d"
  "graphpim_sim"
  "graphpim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphpim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
