
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/graphpim_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/graphpim_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_cpu_core.cc" "tests/CMakeFiles/graphpim_tests.dir/test_cpu_core.cc.o" "gcc" "tests/CMakeFiles/graphpim_tests.dir/test_cpu_core.cc.o.d"
  "/root/repo/tests/test_errors.cc" "tests/CMakeFiles/graphpim_tests.dir/test_errors.cc.o" "gcc" "tests/CMakeFiles/graphpim_tests.dir/test_errors.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/graphpim_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/graphpim_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_graph.cc" "tests/CMakeFiles/graphpim_tests.dir/test_graph.cc.o" "gcc" "tests/CMakeFiles/graphpim_tests.dir/test_graph.cc.o.d"
  "/root/repo/tests/test_hmc_atomic.cc" "tests/CMakeFiles/graphpim_tests.dir/test_hmc_atomic.cc.o" "gcc" "tests/CMakeFiles/graphpim_tests.dir/test_hmc_atomic.cc.o.d"
  "/root/repo/tests/test_hmc_cube.cc" "tests/CMakeFiles/graphpim_tests.dir/test_hmc_cube.cc.o" "gcc" "tests/CMakeFiles/graphpim_tests.dir/test_hmc_cube.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/graphpim_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/graphpim_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_mem_cache.cc" "tests/CMakeFiles/graphpim_tests.dir/test_mem_cache.cc.o" "gcc" "tests/CMakeFiles/graphpim_tests.dir/test_mem_cache.cc.o.d"
  "/root/repo/tests/test_mem_hierarchy.cc" "tests/CMakeFiles/graphpim_tests.dir/test_mem_hierarchy.cc.o" "gcc" "tests/CMakeFiles/graphpim_tests.dir/test_mem_hierarchy.cc.o.d"
  "/root/repo/tests/test_models.cc" "tests/CMakeFiles/graphpim_tests.dir/test_models.cc.o" "gcc" "tests/CMakeFiles/graphpim_tests.dir/test_models.cc.o.d"
  "/root/repo/tests/test_more.cc" "tests/CMakeFiles/graphpim_tests.dir/test_more.cc.o" "gcc" "tests/CMakeFiles/graphpim_tests.dir/test_more.cc.o.d"
  "/root/repo/tests/test_quality.cc" "tests/CMakeFiles/graphpim_tests.dir/test_quality.cc.o" "gcc" "tests/CMakeFiles/graphpim_tests.dir/test_quality.cc.o.d"
  "/root/repo/tests/test_sweeps.cc" "tests/CMakeFiles/graphpim_tests.dir/test_sweeps.cc.o" "gcc" "tests/CMakeFiles/graphpim_tests.dir/test_sweeps.cc.o.d"
  "/root/repo/tests/test_system.cc" "tests/CMakeFiles/graphpim_tests.dir/test_system.cc.o" "gcc" "tests/CMakeFiles/graphpim_tests.dir/test_system.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/graphpim_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/graphpim_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/graphpim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/graphpim_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/graphpim_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/graphpim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/graphpim_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/graphpim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/graphpim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/hmc/CMakeFiles/graphpim_hmc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/graphpim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
