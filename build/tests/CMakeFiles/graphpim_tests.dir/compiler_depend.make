# Empty compiler generated dependencies file for graphpim_tests.
# This may be replaced when dependencies are built.
