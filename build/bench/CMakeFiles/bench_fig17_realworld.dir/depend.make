# Empty dependencies file for bench_fig17_realworld.
# This may be replaced when dependencies are built.
