# Empty dependencies file for bench_table2_offload_targets.
# This may be replaced when dependencies are built.
