file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_offload_targets.dir/bench_table2_offload_targets.cc.o"
  "CMakeFiles/bench_table2_offload_targets.dir/bench_table2_offload_targets.cc.o.d"
  "bench_table2_offload_targets"
  "bench_table2_offload_targets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_offload_targets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
