# Empty dependencies file for bench_table5_flits.
# This may be replaced when dependencies are built.
