file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_flits.dir/bench_table5_flits.cc.o"
  "CMakeFiles/bench_table5_flits.dir/bench_table5_flits.cc.o.d"
  "bench_table5_flits"
  "bench_table5_flits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_flits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
