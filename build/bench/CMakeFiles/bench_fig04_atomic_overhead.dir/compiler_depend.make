# Empty compiler generated dependencies file for bench_fig04_atomic_overhead.
# This may be replaced when dependencies are built.
