file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_hmc_atomics.dir/bench_table1_hmc_atomics.cc.o"
  "CMakeFiles/bench_table1_hmc_atomics.dir/bench_table1_hmc_atomics.cc.o.d"
  "bench_table1_hmc_atomics"
  "bench_table1_hmc_atomics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_hmc_atomics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
