# Empty dependencies file for bench_table1_hmc_atomics.
# This may be replaced when dependencies are built.
