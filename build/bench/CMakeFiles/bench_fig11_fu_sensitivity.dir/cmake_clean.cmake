file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_fu_sensitivity.dir/bench_fig11_fu_sensitivity.cc.o"
  "CMakeFiles/bench_fig11_fu_sensitivity.dir/bench_fig11_fu_sensitivity.cc.o.d"
  "bench_fig11_fu_sensitivity"
  "bench_fig11_fu_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_fu_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
