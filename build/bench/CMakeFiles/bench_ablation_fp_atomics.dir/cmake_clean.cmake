file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fp_atomics.dir/bench_ablation_fp_atomics.cc.o"
  "CMakeFiles/bench_ablation_fp_atomics.dir/bench_ablation_fp_atomics.cc.o.d"
  "bench_ablation_fp_atomics"
  "bench_ablation_fp_atomics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fp_atomics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
