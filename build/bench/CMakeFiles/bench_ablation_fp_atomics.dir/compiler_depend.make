# Empty compiler generated dependencies file for bench_ablation_fp_atomics.
# This may be replaced when dependencies are built.
