# Empty dependencies file for bench_fig14_graph_size.
# This may be replaced when dependencies are built.
