# Empty dependencies file for bench_ablation_page_policy.
# This may be replaced when dependencies are built.
