# Empty compiler generated dependencies file for bench_fig15_energy.
# This may be replaced when dependencies are built.
