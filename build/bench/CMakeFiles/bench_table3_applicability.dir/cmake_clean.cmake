file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_applicability.dir/bench_table3_applicability.cc.o"
  "CMakeFiles/bench_table3_applicability.dir/bench_table3_applicability.cc.o.d"
  "bench_table3_applicability"
  "bench_table3_applicability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_applicability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
