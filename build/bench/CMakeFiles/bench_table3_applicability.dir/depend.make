# Empty dependencies file for bench_table3_applicability.
# This may be replaced when dependencies are built.
