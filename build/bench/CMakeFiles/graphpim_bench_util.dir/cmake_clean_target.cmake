file(REMOVE_RECURSE
  "libgraphpim_bench_util.a"
)
