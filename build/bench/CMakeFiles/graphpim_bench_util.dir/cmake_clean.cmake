file(REMOVE_RECURSE
  "CMakeFiles/graphpim_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/graphpim_bench_util.dir/bench_util.cc.o.d"
  "libgraphpim_bench_util.a"
  "libgraphpim_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphpim_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
