# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for graphpim_bench_util.
