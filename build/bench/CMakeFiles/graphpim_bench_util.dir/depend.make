# Empty dependencies file for graphpim_bench_util.
# This may be replaced when dependencies are built.
