# Empty compiler generated dependencies file for bench_fig10_missrate.
# This may be replaced when dependencies are built.
